"""Network internals, failure injection, and large-P robustness."""

import pytest

from repro.runtime import PObject, SpmdError
from repro.runtime.comm import Message, Network
from tests.conftest import run, run_detailed


class TestNetwork:
    def _msg(self, src, dst, i=0):
        return Message(src, dst, 0, "m", (i,), 32, 0.0, src)

    def test_fifo_per_channel(self):
        net = Network(4, aggregation=8)
        for i in range(5):
            net.enqueue(self._msg(0, 1, i))
        popped = [net.pop(0, 1).args[0] for _ in range(5)]
        assert popped == [0, 1, 2, 3, 4]
        assert net.pop(0, 1) is None

    def test_aggregation_boundary_accounting(self):
        net = Network(2, aggregation=3)
        starts = [net.enqueue(self._msg(0, 1, i)) for i in range(7)]
        # new physical message every 3 RMIs
        assert starts == [True, False, False, True, False, False, True]

    def test_aggregation_resets_on_drain(self):
        net = Network(2, aggregation=4)
        net.enqueue(self._msg(0, 1))
        net.pop(0, 1)  # channel empty -> next enqueue starts a new packet
        assert net.enqueue(self._msg(0, 1)) is True

    def test_pending_queries(self):
        net = Network(3, aggregation=8)
        net.enqueue(self._msg(0, 2))
        net.enqueue(self._msg(1, 2))
        assert net.total_pending == 2
        assert len(net.pending_to(2)) == 2
        assert net.has_pending(0, 2) and not net.has_pending(2, 0)
        assert len(net.pending_among({0, 2})) == 1
        assert len(net.pending_among({0, 1, 2})) == 2


class _Failing(PObject):
    def __init__(self, ctx):
        super().__init__(ctx)
        ctx.barrier(self.group)

    def boom(self):
        raise RuntimeError("handler exploded")


class TestFailureInjection:
    def test_handler_exception_propagates_from_sync(self):
        def prog(ctx):
            f = _Failing(ctx)
            if ctx.id == 0:
                f._sync(1, "boom")
            ctx.rmi_fence()
        with pytest.raises(SpmdError, match="handler exploded"):
            run(prog, nlocs=2)

    def test_handler_exception_propagates_from_fence_drain(self):
        def prog(ctx):
            f = _Failing(ctx)
            if ctx.id == 0:
                f._async(1, "boom")
            ctx.rmi_fence()
        with pytest.raises(SpmdError, match="handler exploded"):
            run(prog, nlocs=2)

    def test_unknown_handle_rejected(self):
        def prog(ctx):
            ctx.sync_rmi(0, 99999, "whatever")
        with pytest.raises(SpmdError, match="unknown p_object"):
            run(prog, nlocs=2)

    def test_failure_in_one_location_unwinds_all(self):
        def prog(ctx):
            if ctx.id == 3:
                raise KeyError("late failure")
            for _ in range(3):
                ctx.rmi_fence()
            return "done"
        with pytest.raises(SpmdError, match="location 3"):
            run(prog, nlocs=4)

    def test_runtime_reusable_after_failed_run(self):
        def bad(ctx):
            raise ValueError("x")
        with pytest.raises(SpmdError):
            run(bad, nlocs=2)
        assert run(lambda ctx: ctx.id, nlocs=2) == [0, 1]


class TestScale:
    def test_sixty_four_locations(self):
        def prog(ctx):
            total = ctx.allreduce_rmi(1)
            ctx.rmi_fence()
            return total
        assert run(prog, nlocs=64) == [64] * 64

    def test_container_on_many_locations(self):
        from repro.containers.parray import PArray

        def prog(ctx):
            pa = PArray(ctx, 128, dtype=int)
            pa.set_element((ctx.id * 7) % 128, ctx.id)
            ctx.rmi_fence()
            return pa.local_size()
        out = run(prog, nlocs=32)
        assert sum(out) == 128

    def test_clock_monotone_through_collectives(self):
        def prog(ctx):
            clocks = [ctx.clock]
            for _ in range(4):
                ctx.allreduce_rmi(1)
                clocks.append(ctx.clock)
            return all(b >= a for a, b in zip(clocks, clocks[1:]))
        assert all(run(prog, nlocs=8))
