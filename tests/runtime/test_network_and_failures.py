"""Network internals, failure injection, and large-P robustness."""

import pytest

from repro.runtime import PObject, SpmdError
from repro.runtime.comm import Message, Network
from tests.conftest import run


class TestNetwork:
    def _msg(self, src, dst, i=0):
        return Message(src, dst, 0, "m", (i,), 32, 0.0, src)

    def test_fifo_per_channel(self):
        net = Network(4, aggregation=8)
        for i in range(5):
            net.enqueue(self._msg(0, 1, i))
        popped = [net.pop(0, 1).args[0] for _ in range(5)]
        assert popped == [0, 1, 2, 3, 4]
        assert net.pop(0, 1) is None

    def test_aggregation_boundary_accounting(self):
        net = Network(2, aggregation=3)
        starts = [net.enqueue(self._msg(0, 1, i)) for i in range(7)]
        # new physical message every 3 RMIs
        assert starts == [True, False, False, True, False, False, True]

    def test_aggregation_resets_on_drain(self):
        net = Network(2, aggregation=4)
        net.enqueue(self._msg(0, 1))
        net.pop(0, 1)  # channel empty -> next enqueue starts a new packet
        assert net.enqueue(self._msg(0, 1)) is True

    def test_pending_queries(self):
        net = Network(3, aggregation=8)
        net.enqueue(self._msg(0, 2))
        net.enqueue(self._msg(1, 2))
        assert net.total_pending == 2
        assert len(net.pending_to(2)) == 2
        assert net.has_pending(0, 2) and not net.has_pending(2, 0)
        assert len(net.pending_among({0, 2})) == 1
        assert len(net.pending_among({0, 1, 2})) == 2

    def test_pending_index_tracks_churn(self):
        """The per-destination channel index must agree with a brute-force
        scan through arbitrary enqueue/pop interleavings (the fence-poll
        fast path must never see stale emptiness information)."""
        import random

        rng = random.Random(7)
        P = 6
        net = Network(P, aggregation=4)
        live = []
        for step in range(400):
            if live and rng.random() < 0.45:
                src, dst = live[rng.randrange(len(live))]
                got = net.pop(src, dst)
                assert got is not None
                live.remove((src, dst))
            else:
                src, dst = rng.randrange(P), rng.randrange(P)
                net.enqueue(self._msg(src, dst, step))
                live.append((src, dst))
            for dst in range(P):
                expect = sorted(s for s, d in set(live) if d == dst)
                assert sorted(s for s, _ in net.pending_to(dst)) == expect
        assert net.total_pending == len(live)

    def test_pending_among_preserves_channel_creation_order(self):
        """Drain order is part of the deterministic simulation: the indexed
        query must enumerate channels in creation order, like the original
        full scan did."""
        net = Network(4, aggregation=8)
        order = [(2, 1), (0, 3), (1, 0), (3, 1), (0, 1)]
        for src, dst in order:
            net.enqueue(self._msg(src, dst))
        chans = net.pending_among({0, 1, 2, 3})
        expected = [net.channel(src, dst) for src, dst in order]
        assert [id(c) for c in chans] == [id(c) for c in expected]
        # popping one channel empty removes exactly it from the view
        net.pop(1, 0)
        chans = net.pending_among({0, 1, 2, 3})
        assert [id(c) for c in chans] == [
            id(net.channel(s, d)) for s, d in order if (s, d) != (1, 0)]


class _Failing(PObject):
    def __init__(self, ctx):
        super().__init__(ctx)
        ctx.barrier(self.group)

    def boom(self):
        raise RuntimeError("handler exploded")


class TestFailureInjection:
    def test_handler_exception_propagates_from_sync(self):
        def prog(ctx):
            f = _Failing(ctx)
            if ctx.id == 0:
                f._sync(1, "boom")
            ctx.rmi_fence()
        with pytest.raises(SpmdError, match="handler exploded"):
            run(prog, nlocs=2)

    def test_handler_exception_propagates_from_fence_drain(self):
        def prog(ctx):
            f = _Failing(ctx)
            if ctx.id == 0:
                f._async(1, "boom")
            ctx.rmi_fence()
        with pytest.raises(SpmdError, match="handler exploded"):
            run(prog, nlocs=2)

    def test_unknown_handle_rejected(self):
        def prog(ctx):
            ctx.sync_rmi(0, 99999, "whatever")
        with pytest.raises(SpmdError, match="unknown p_object"):
            run(prog, nlocs=2)

    def test_failure_in_one_location_unwinds_all(self):
        def prog(ctx):
            if ctx.id == 3:
                raise KeyError("late failure")
            for _ in range(3):
                ctx.rmi_fence()
            return "done"
        with pytest.raises(SpmdError, match="location 3"):
            run(prog, nlocs=4)

    def test_runtime_reusable_after_failed_run(self):
        def bad(ctx):
            raise ValueError("x")
        with pytest.raises(SpmdError):
            run(bad, nlocs=2)
        assert run(lambda ctx: ctx.id, nlocs=2) == [0, 1]


class TestScale:
    def test_sixty_four_locations(self):
        def prog(ctx):
            total = ctx.allreduce_rmi(1)
            ctx.rmi_fence()
            return total
        assert run(prog, nlocs=64) == [64] * 64

    def test_container_on_many_locations(self):
        from repro.containers.parray import PArray

        def prog(ctx):
            pa = PArray(ctx, 128, dtype=int)
            pa.set_element((ctx.id * 7) % 128, ctx.id)
            ctx.rmi_fence()
            return pa.local_size()
        out = run(prog, nlocs=32)
        assert sum(out) == 128

    def test_clock_monotone_through_collectives(self):
        def prog(ctx):
            clocks = [ctx.clock]
            for _ in range(4):
                ctx.allreduce_rmi(1)
                clocks.append(ctx.clock)
            return all(b >= a for a, b in zip(clocks, clocks[1:]))
        assert all(run(prog, nlocs=8))
