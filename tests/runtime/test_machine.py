"""Machine-model tests: placement, latency asymmetry, collective costs."""

import math

import pytest

from repro.runtime.machine import (
    CRAY4,
    MACHINES,
    P5_CLUSTER,
    MachineModel,
    get_machine,
)


class TestGetMachine:
    def test_by_name(self):
        assert get_machine("cray4") is CRAY4
        assert get_machine("CRAY4") is CRAY4
        assert get_machine("p5cluster") is P5_CLUSTER

    def test_by_instance(self):
        assert get_machine(CRAY4) is CRAY4

    def test_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown machine"):
            get_machine("bluegene")

    def test_registry_complete(self):
        assert set(MACHINES) == {"cray4", "cray5", "p5cluster", "smp"}


class TestPlacement:
    def test_packed_fills_nodes(self):
        # cray4 has 4 cores per node
        assert CRAY4.node_of(0, 8, "packed") == 0
        assert CRAY4.node_of(3, 8, "packed") == 0
        assert CRAY4.node_of(4, 8, "packed") == 1

    def test_spread_one_location_per_node(self):
        for loc in range(8):
            assert CRAY4.node_of(loc, 8, "spread") == loc

    def test_same_node(self):
        assert CRAY4.same_node(0, 3, 8, "packed")
        assert not CRAY4.same_node(0, 4, 8, "packed")
        assert not CRAY4.same_node(0, 1, 8, "spread")

    def test_p5_wide_nodes(self):
        assert P5_CLUSTER.same_node(0, 15, 32, "packed")
        assert not P5_CLUSTER.same_node(0, 16, 32, "packed")


class TestLatency:
    def test_self_latency_zero(self):
        assert CRAY4.latency(2, 2, 8, "packed") == 0.0
        assert CRAY4.byte_cost(2, 2, 8, "packed") == 0.0

    def test_intra_cheaper_than_inter(self):
        intra = P5_CLUSTER.latency(0, 1, 32, "packed")
        inter = P5_CLUSTER.latency(0, 16, 32, "packed")
        assert intra < inter

    def test_spread_forces_inter_node(self):
        packed = P5_CLUSTER.latency(0, 1, 4, "packed")
        spread = P5_CLUSTER.latency(0, 1, 4, "spread")
        assert spread > packed

    def test_all_machines_positive_costs(self):
        for m in MACHINES.values():
            assert m.t_access > 0 and m.o_send > 0 and m.o_recv > 0
            assert m.latency_inter >= m.latency_intra


class TestCollectiveCost:
    def test_log_growth(self):
        c2 = CRAY4.collective_cost(2)
        c8 = CRAY4.collective_cost(8)
        assert c8 > c2
        assert c8 == pytest.approx(
            CRAY4.coll_alpha * math.ceil(math.log2(8)) + CRAY4.coll_beta)

    def test_singleton_cost_is_beta(self):
        assert CRAY4.collective_cost(1) == CRAY4.coll_beta


class TestOverride:
    def test_with_override(self):
        m = CRAY4.with_(aggregation=1)
        assert m.aggregation == 1
        assert m.o_send == CRAY4.o_send
        assert isinstance(m, MachineModel)

    def test_original_unchanged(self):
        CRAY4.with_(aggregation=1)
        assert CRAY4.aggregation == 64
