"""Coverage for smaller public APIs: poll, charges, machine cray5, chunks."""

from repro.algorithms import p_accumulate, p_generate, p_reduce
from repro.containers.parray import PArray
from repro.containers.pgraph import PGraph
from repro.runtime import CRAY5, PObject
from repro.views import Array1DView, StridedView
from tests.conftest import run


class _Inbox(PObject):
    def __init__(self, ctx):
        super().__init__(ctx)
        self.got = []
        ctx.barrier(self.group)

    def deliver(self, v):
        self.got.append(v)


class TestPoll:
    def test_poll_executes_incoming(self):
        def prog(ctx):
            box = _Inbox(ctx)
            peer = (ctx.id + 1) % ctx.nlocs
            box._async(peer, "deliver", ctx.id)
            ctx.barrier()          # everyone has sent; nothing delivered yet
            before = len(box.got)
            n = ctx.poll()
            after = len(box.got)
            ctx.rmi_fence()
            return before, n, after
        out = run(prog, nlocs=3)
        assert all(o == (0, 1, 1) for o in out)


class TestCharges:
    def test_charge_helpers_advance_clock(self):
        def prog(ctx):
            t0 = ctx.clock
            ctx.charge_access(3)
            ctx.charge_lookup(2)
            ctx.charge_lock()
            m = ctx.machine
            expected = 3 * m.t_access + 2 * m.t_lookup + m.t_lock
            return abs((ctx.clock - t0) - expected) < 1e-12
        assert all(run(prog, nlocs=2, machine="cray4"))

    def test_lock_stat_counted(self):
        def prog(ctx):
            ctx.charge_lock(5)
            return ctx.stats.lock_acquires
        assert run(prog, nlocs=1) == [5]


class TestCray5:
    def test_runs_on_cray5(self):
        def prog(ctx):
            pa = PArray(ctx, 16, dtype=int)
            v = Array1DView(pa)
            p_generate(v, lambda i: i, vector=lambda g: g)
            return p_accumulate(v, 0)
        assert run(prog, nlocs=8, machine=CRAY5) == [120] * 8


class TestMiscViews:
    def test_strided_chunks_cover(self):
        def prog(ctx):
            pa = PArray(ctx, 20, dtype=int)
            v = Array1DView(pa)
            p_generate(v, lambda i: i, vector=lambda g: g)
            sv = StridedView(v, stride=2)
            return p_accumulate(sv, 0)
        assert run(prog, nlocs=4) == [sum(range(0, 20, 2))] * 4

    def test_p_reduce_alias(self):
        assert p_reduce is p_accumulate

    def test_workfunction_cost_charged(self):
        def prog(ctx, cost):
            pa = PArray(ctx, 400, dtype=float)
            v = Array1DView(pa)
            ctx.rmi_fence()
            t0 = ctx.start_timer()
            from repro.algorithms import p_for_each

            p_for_each(v, lambda x: x, vector=lambda a: a, cost=cost)
            return ctx.stop_timer(t0)
        cheap = max(run(prog, nlocs=2, machine="cray4", args=(0.01,)))
        pricey = max(run(prog, nlocs=2, machine="cray4", args=(5.0,)))
        assert pricey > cheap * 5


class TestGraphLocalHelpers:
    def test_local_edges_and_vertices(self):
        def prog(ctx):
            g = PGraph(ctx, 8)
            if ctx.id == 0:
                for v in range(7):
                    g.add_edge_async(v, v + 1)
            ctx.rmi_fence()
            nv = len(g.local_vertices())
            ne = len(g.local_edges())
            return ctx.allreduce_rmi(nv), ctx.allreduce_rmi(ne)
        assert run(prog, nlocs=4)[0] == (8, 7)
