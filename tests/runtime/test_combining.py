"""Combining-buffer subsystem tests (Ch. III.B combining): windowed
flushes, source-FIFO ordering with scalar RMIs, fence completion, the
on/off ablation toggle, and the combined-op counters."""

import pytest

from repro.containers.associative import PHashMap
from repro.runtime.comm import (
    combining_enabled,
    combining_window,
    set_combining,
    set_combining_window,
)
from tests.conftest import run, run_detailed


@pytest.fixture
def combining_on():
    prev = set_combining(True)
    yield
    set_combining(prev)


@pytest.fixture
def small_window():
    prev = set_combining_window(8)
    yield 8
    set_combining_window(prev)


def _remote_key_for(ctx, hm):
    """A key owned by another location (hash partition probe)."""
    from repro.core.partitions import stable_hash

    i = 0
    while True:
        key = f"probe{i}"
        if stable_hash(key) % ctx.nlocs != ctx.id and ctx.nlocs > 1:
            return key
        i += 1


class TestToggle:
    def test_set_combining_returns_previous(self):
        prev = set_combining(False)
        try:
            assert combining_enabled() is False
            assert set_combining(True) is False
            assert combining_enabled() is True
        finally:
            set_combining(prev)

    def test_window_validation(self):
        with pytest.raises(ValueError):
            set_combining_window(0)
        prev = set_combining_window(16)
        try:
            assert combining_window() == 16
        finally:
            set_combining_window(prev)


class TestSemantics:
    def test_batched_equals_scalar_results(self):
        """The ablation invariant: identical to_dict with combining on/off."""

        def prog(ctx):
            hm = PHashMap(ctx)
            for i in range(40):
                hm.insert(f"k{i}_{ctx.id}", i)
                hm.accumulate(f"acc{i % 7}", 1)
            hm.erase_batch([f"k{i}_{ctx.id}" for i in range(0, 40, 2)])
            ctx.rmi_fence()
            return hm.to_dict()

        outs = {}
        for on in (True, False):
            prev = set_combining(on)
            try:
                outs[on] = run(prog, nlocs=4)[0]
            finally:
                set_combining(prev)
        assert outs[True] == outs[False]

    def test_fence_completes_buffered_ops(self, combining_on):
        def prog(ctx):
            hm = PHashMap(ctx)
            hm.insert(f"key{ctx.id}", ctx.id)
            ctx.rmi_fence()
            return [hm.find(f"key{j}") for j in range(ctx.nlocs)]

        assert run(prog, nlocs=4)[0] == [0, 1, 2, 3]

    def test_sync_rmi_flushes_buffer_first(self, combining_on):
        """Source-FIFO: a sync method to the same destination observes
        every buffered op issued before it, without a fence."""

        def prog(ctx):
            hm = PHashMap(ctx)
            ctx.rmi_fence()
            if ctx.id == 0 and ctx.nlocs > 1:
                key = _remote_key_for(ctx, hm)
                hm.accumulate(key, 5)
                # find() is synchronous: combined record must land first
                assert hm.find(key) == 5
            ctx.rmi_fence()
            return True

        assert all(run(prog, nlocs=4))

    def test_explicit_flush_combining(self, combining_on):
        """Container-level flush moves records into the network (they
        execute at the destination's next poll/drain, not immediately)."""

        def prog(ctx):
            hm = PHashMap(ctx)
            ctx.rmi_fence()
            if ctx.id == 0:
                key = _remote_key_for(ctx, hm)
                hm.accumulate(key, 3)
                flushed = hm.flush_combining()
                assert flushed == 1
                assert hm.flush_combining() == 0  # already empty
            ctx.rmi_fence()
            return True

        assert all(run(prog, nlocs=2))

    def test_cross_container_fifo(self, combining_on):
        """Source FIFO holds across p_objects on one channel: switching
        containers flushes the older buffer first, so replay order at the
        destination equals issue order."""
        trace = []

        def prog(ctx):
            a = PHashMap(ctx)
            b = PHashMap(ctx)
            key = _remote_key_for(ctx, a)  # same owner in both (same hash)
            if ctx.id == 0:
                a.insert_sync(key, 0)
                b.insert_sync(key, 0)
            ctx.rmi_fence()
            if ctx.id == 0:
                a.apply_set(key, lambda v: trace.append("a1") or v)
                b.apply_set(key, lambda v: trace.append("b1") or v)
                a.apply_set(key, lambda v: trace.append("a2") or v)
            ctx.rmi_fence()
            return True

        assert all(run(prog, nlocs=2))
        assert trace == ["a1", "b1", "a2"]

    def test_os_fence_completes_buffered_ops(self, combining_on):
        def prog(ctx):
            hm = PHashMap(ctx)
            ctx.rmi_fence()
            if ctx.id == 0:
                key = _remote_key_for(ctx, hm)
                hm.set_element(key, 42)
                ctx.os_fence()
                # one-sided completion: the op already executed remotely
                assert hm.find(key) == 42
            ctx.rmi_fence()
            return True

        assert all(run(prog, nlocs=2))


class TestAccounting:
    def test_window_flush_is_one_physical_message(self, combining_on,
                                                  small_window):
        def prog(ctx):
            hm = PHashMap(ctx)
            ctx.rmi_fence()
            if ctx.id == 0:
                key = _remote_key_for(ctx, hm)
                msgs0 = ctx.stats.physical_messages
                for _ in range(3 * small_window):
                    hm.accumulate(key, 1)
                assert ctx.stats.physical_messages - msgs0 == 3
                assert ctx.stats.combining_flushes == 3
                assert ctx.stats.combined_ops == 3 * small_window
            ctx.rmi_fence()
            return hm.to_dict()

        out = run(prog, nlocs=2)[0]
        assert sum(out.values()) == 3 * 8

    def test_message_reduction_vs_scalar(self):
        """Combining cuts physical messages by ~window/aggregation on an
        all-remote op stream."""

        def prog(ctx):
            hm = PHashMap(ctx)
            keys = []
            i = 0
            while len(keys) < 200:
                k = f"x{i}"
                i += 1
                from repro.core.partitions import stable_hash

                if stable_hash(k) % ctx.nlocs != ctx.id:
                    keys.append(k)
            ctx.rmi_fence()
            for k in keys:
                hm.accumulate(k, 1)
            ctx.rmi_fence()
            return True

        msgs = {}
        for on in (True, False):
            prev = set_combining(on)
            try:
                rep = run_detailed(prog, nlocs=2)
            finally:
                set_combining(prev)
            msgs[on] = rep.stats.total.physical_messages
        assert msgs[True] < msgs[False]

    def test_no_combining_for_local_ops(self, combining_on):
        """Ops resolving to the calling location never buffer."""

        def prog(ctx):
            hm = PHashMap(ctx)
            from repro.core.partitions import stable_hash

            i = 0
            while stable_hash(f"loc{i}") % ctx.nlocs != ctx.id:
                i += 1
            hm.insert(f"loc{i}", ctx.id)
            assert ctx.stats.combined_ops == 0
            ctx.rmi_fence()
            return hm.find(f"loc{i}")

        assert run(prog, nlocs=2) == [0, 1]
