"""Scheduler tests: SPMD execution, collectives, groups, error handling."""

import pytest

from repro.runtime import LocationGroup, Runtime, SpmdError
from tests.conftest import run, run_detailed


class TestBasicExecution:
    def test_per_location_results(self):
        assert run(lambda ctx: ctx.id * 10, nlocs=4) == [0, 10, 20, 30]

    def test_single_location(self):
        assert run(lambda ctx: ctx.nlocs, nlocs=1) == [1]

    def test_many_locations(self):
        out = run(lambda ctx: ctx.id, nlocs=32)
        assert out == list(range(32))

    def test_args_passed(self):
        out = run(lambda ctx, a, b: a + b + ctx.id, args=(1, 2), nlocs=2)
        assert out == [3, 4]

    def test_nlocs_zero_rejected(self):
        with pytest.raises(ValueError):
            Runtime(0)

    def test_identity_accessors(self):
        def prog(ctx):
            return (ctx.get_location_id(), ctx.get_num_locations())
        assert run(prog, nlocs=3) == [(0, 3), (1, 3), (2, 3)]


class TestDeterminism:
    def test_clocks_deterministic(self):
        def prog(ctx):
            ctx.charge(1.5 * (ctx.id + 1))
            ctx.rmi_fence()
            return round(ctx.clock, 6)
        a = run(prog, nlocs=4, machine="cray4")
        b = run(prog, nlocs=4, machine="cray4")
        assert a == b

    def test_fence_synchronises_clocks(self):
        def prog(ctx):
            ctx.charge(100.0 * ctx.id)
            ctx.rmi_fence()
            return ctx.clock
        clocks = run(prog, nlocs=4)
        assert len(set(clocks)) == 1
        assert clocks[0] >= 300.0


class TestCollectives:
    def test_allreduce_default_sum(self):
        assert run(lambda ctx: ctx.allreduce_rmi(ctx.id + 1), nlocs=4) == [10] * 4

    def test_allreduce_custom_op(self):
        out = run(lambda ctx: ctx.allreduce_rmi(ctx.id, max), nlocs=5)
        assert out == [4] * 5

    def test_reduce_rooted(self):
        out = run(lambda ctx: ctx.reduce_rmi(1, root=2), nlocs=4)
        assert out == [None, None, 4, None]

    def test_broadcast(self):
        def prog(ctx):
            return ctx.broadcast_rmi(1, "payload" if ctx.id == 1 else None)
        assert run(prog, nlocs=3) == ["payload"] * 3

    def test_allgather_ordered(self):
        out = run(lambda ctx: ctx.allgather_rmi(ctx.id * 2), nlocs=4)
        assert out == [[0, 2, 4, 6]] * 4

    def test_alltoall(self):
        def prog(ctx):
            return ctx.alltoall_rmi([f"{ctx.id}->{j}" for j in range(ctx.nlocs)])
        out = run(prog, nlocs=3)
        assert out[1] == ["0->1", "1->1", "2->1"]

    def test_alltoall_bad_size(self):
        def prog(ctx):
            return ctx.alltoall_rmi([0])  # wrong length for nlocs=2
        with pytest.raises(SpmdError, match="alltoall"):
            run(prog, nlocs=2)

    def test_scan_inclusive(self):
        out = run(lambda ctx: ctx.scan_rmi(ctx.id + 1), nlocs=4)
        assert out == [(1, 10), (3, 10), (6, 10), (10, 10)]

    def test_scan_exclusive(self):
        out = run(lambda ctx: ctx.scan_rmi(1, exclusive=True), nlocs=4)
        assert [p for p, _ in out] == [None, 1, 2, 3]
        assert all(t == 4 for _, t in out)

    def test_barrier(self):
        def prog(ctx):
            ctx.charge(ctx.id * 50.0)
            ctx.barrier()
            return ctx.clock
        clocks = run(prog, nlocs=3)
        assert len(set(clocks)) == 1


class TestGroups:
    def test_subgroup_collective(self):
        def prog(ctx):
            evens = LocationGroup([0, 2])
            odds = LocationGroup([1, 3])
            g = evens if ctx.id % 2 == 0 else odds
            return ctx.allreduce_rmi(ctx.id, group=g)
        assert run(prog, nlocs=4) == [2, 4, 2, 4]

    def test_group_membership_enforced(self):
        def prog(ctx):
            return ctx.allreduce_rmi(1, group=LocationGroup([0]))
        with pytest.raises(SpmdError, match="not in"):
            run(prog, nlocs=2)

    def test_singleton_group_inline(self):
        def prog(ctx):
            g = LocationGroup([ctx.id])
            a = ctx.allreduce_rmi(5, group=g)
            b = ctx.allgather_rmi(7, group=g)
            c = ctx.scan_rmi(3, group=g)
            ctx.rmi_fence(group=g)
            return (a, b, c)
        assert run(prog, nlocs=2) == [(5, [7], (3, 3))] * 2

    def test_group_requires_member(self):
        with pytest.raises(ValueError):
            LocationGroup([])

    def test_group_ordering(self):
        g = LocationGroup([3, 1, 2])
        assert g.members == (1, 2, 3)
        assert g.index_of(2) == 1


class TestErrorHandling:
    def test_exception_propagates_with_location(self):
        def prog(ctx):
            if ctx.id == 2:
                raise ValueError("boom")
            ctx.rmi_fence()
        with pytest.raises(SpmdError, match="location 2 .*boom"):
            run(prog, nlocs=4)

    def test_mismatched_collectives_detected(self):
        def prog(ctx):
            if ctx.id == 0:
                ctx.rmi_fence()
            # other locations exit without fencing
        with pytest.raises(SpmdError, match="deadlock|mismatch"):
            run(prog, nlocs=2)

    def test_different_collective_ops_detected(self):
        def prog(ctx):
            if ctx.id == 0:
                ctx.rmi_fence()
            else:
                ctx.allreduce_rmi(1)
        with pytest.raises(SpmdError, match="mismatch"):
            run(prog, nlocs=2)


class TestStatsAndTimers:
    def test_timer_idiom(self):
        def prog(ctx):
            t0 = ctx.start_timer()
            ctx.charge(42.0)
            return ctx.stop_timer(t0)
        assert run(prog, nlocs=2) == [42.0, 42.0]

    def test_stats_collected(self):
        def prog(ctx):
            ctx.rmi_fence()
        rep = run_detailed(prog, nlocs=4)
        assert rep.stats.total.fences == 4
        assert len(rep.clocks) == 4
