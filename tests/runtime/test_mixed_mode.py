"""Mixed-mode runtime tests: hierarchical collectives, the zero-copy
intra-node fast path, node-aware slab routing, and their topology
semantics (flat-equivalence with one core per node, byte-identical
zero-copy results, no aliasing through zero-copy range reads)."""

import numpy as np
import pytest

from repro.containers.associative import PHashMap
from repro.containers.parray import PArray
from repro.containers.pgraph import PGraph
from repro.containers.plist import PList
from repro.containers.pmatrix import PMatrix
from repro.containers.pvector import PVector
from repro.runtime import set_zero_copy, zero_copy_enabled
from repro.runtime.machine import CRAY4, CRAY5, P5_CLUSTER, SMP
from tests.conftest import run, run_detailed


@pytest.fixture
def zero_copy():
    """Enable the fast path for one test, restoring the previous setting."""
    prev = set_zero_copy(True)
    yield
    set_zero_copy(prev)


class TestHierarchicalCollectives:
    def test_one_core_per_node_equals_flat(self):
        for m in (CRAY4, CRAY5, P5_CLUSTER):
            flat_machine = m.with_(cores_per_node=1)
            for p in (1, 2, 5, 16, 33):
                assert (flat_machine.hierarchical_collective_cost(range(p), p)
                        == m.collective_cost(p))

    def test_spread_placement_equals_flat(self):
        for p in (2, 8, 17):
            assert (CRAY4.hierarchical_collective_cost(range(p), p, "spread")
                    == CRAY4.collective_cost(p))

    def test_uniform_latency_equals_flat(self):
        # SMP has latency_intra == latency_inter: the two-level tree costs
        # exactly the flat tree, so the default test machine is unchanged
        for p in (2, 8, 64):
            assert (SMP.hierarchical_collective_cost(range(p), p)
                    == SMP.collective_cost(p))

    def test_packed_multicore_cheaper_than_flat(self):
        for m in (CRAY4, CRAY5, P5_CLUSTER):
            p = 2 * m.cores_per_node
            hier = m.hierarchical_collective_cost(range(p), p)
            assert hier < m.collective_cost(p)
            assert hier >= m.coll_beta

    def test_singleton_is_beta(self):
        assert CRAY4.hierarchical_collective_cost([3], 8) == CRAY4.coll_beta

    def test_composes_per_level_counts(self):
        # 8 locations on 2 nodes of 4: one intra stage of log2(4) at the
        # discounted alpha, one inter stage of log2(2) at full alpha
        intra = CRAY4.intra_coll_alpha()
        expected = intra * 2 + CRAY4.coll_alpha * 1 + CRAY4.coll_beta
        assert CRAY4.hierarchical_collective_cost(range(8), 8) == expected

    def test_fence_uses_hierarchical_cost(self):
        def prog(ctx):
            ctx.rmi_fence()
            return ctx.clock

        packed = max(run(prog, nlocs=8, machine="cray4", placement="packed"))
        spread = max(run(prog, nlocs=8, machine="cray4", placement="spread"))
        assert packed < spread


def _workload(ctx):
    """One mixed program touching every container; all remote traffic goes
    to the next location (same node on an 8-cores-per-node machine)."""
    n = ctx.nlocs * 8
    pa = PArray(ctx, n, dtype=int)
    pv = PVector(ctx, n)
    pm = PMatrix(ctx, 8, 8)
    hm = PHashMap(ctx)
    pl = PList(ctx)
    pg = PGraph(ctx, num_vertices=n)
    ctx.rmi_fence()
    peer = (ctx.id + 1) % ctx.nlocs
    for i in range(8):
        g = peer * 8 + i
        pa.set_element(g, ctx.id * 100 + i)
        pv.set_element(g, ctx.id * 200 + i)
        hm.accumulate((peer, i % 3), 1)
        pg.add_edge(g, (g + 3) % n)
    pm.set_block(2 * ctx.id % 8, 0, np.full((2, 2), ctx.id + 1.0))
    pl.push_back(ctx.id)
    got_sync = pa.get_element(peer * 8)          # read-your-write
    slab = pa.get_range(peer * 8, peer * 8 + 8)  # bulk read-your-write
    fut = pa.split_phase_get_element(peer * 8 + 1)
    got_split = fut.get()
    ctx.rmi_fence()
    return (pa.to_list(), pv.to_list(), pm.to_nested(),
            sorted(hm.to_dict().items()), sorted(pl.to_list()),
            pg.get_num_edges(), got_sync, [int(v) for v in slab], got_split)


class TestZeroCopyEquivalence:
    def test_results_identical_across_all_containers(self):
        baseline = run(_workload, nlocs=4, machine="cray5")
        prev = set_zero_copy(True)
        try:
            fast = run(_workload, nlocs=4, machine="cray5")
        finally:
            set_zero_copy(prev)
        assert fast == baseline

    def test_counters_and_no_messages(self, zero_copy):
        def prog(ctx):
            pa = PArray(ctx, ctx.nlocs * 8, dtype=int)
            ctx.rmi_fence()
            msgs0 = ctx.stats.physical_messages
            peer = (ctx.id + 1) % ctx.nlocs
            for i in range(8):
                pa.set_element(peer * 8 + i, i)
            got = pa.get_element(peer * 8)
            ctx.rmi_fence()
            return ctx.stats.physical_messages - msgs0, got

        rep = run_detailed(prog, nlocs=4, machine="cray5")
        total = rep.stats.total
        assert [r[0] for r in rep.results] == [0] * 4  # no messages at all
        assert total.local_node_invocations > 0
        assert total.bytes_avoided > 0
        assert total.bytes_sent == 0

    def test_cross_node_still_uses_messages(self, zero_copy):
        # cray4 has 4 cores/node: with 8 locations, location 0 -> 4 crosses
        # the node boundary and must stay on the message path
        def prog(ctx):
            pa = PArray(ctx, ctx.nlocs, dtype=int)
            ctx.rmi_fence()
            if ctx.id == 0:
                pa.set_element(4, 77)   # remote node
                pa.set_element(1, 33)   # same node
            ctx.rmi_fence()
            return pa.to_list()

        rep = run_detailed(prog, nlocs=8, machine="cray4")
        total = rep.stats.total
        assert rep.results[0][4] == 77 and rep.results[0][1] == 33
        assert total.physical_messages > 0      # the cross-node write
        assert total.local_node_invocations > 0  # the same-node write

    def test_zero_copy_faster_and_cheaper(self):
        def prog(ctx):
            pa = PArray(ctx, ctx.nlocs * 32, dtype=int)
            ctx.rmi_fence()
            t0 = ctx.start_timer()
            peer = (ctx.id + 1) % ctx.nlocs
            for i in range(64):
                pa.set_element(peer * 32 + i % 32, i)
            acc = sum(int(pa.get_element(peer * 32 + i)) for i in range(8))
            ctx.rmi_fence()
            return ctx.stop_timer(t0), acc

        slow = run(prog, nlocs=4, machine="cray5")
        prev = set_zero_copy(True)
        try:
            fast = run(prog, nlocs=4, machine="cray5")
        finally:
            set_zero_copy(prev)
        assert [r[1] for r in fast] == [r[1] for r in slow]
        assert max(r[0] for r in fast) < max(r[0] for r in slow)

    def test_async_completes_eagerly_intra_node(self, zero_copy):
        # the documented semantic difference: a fast-path async is visible
        # before any fence (shared-memory completion)
        def prog(ctx):
            pa = PArray(ctx, ctx.nlocs, dtype=int)
            ctx.rmi_fence()
            if ctx.id == 0:
                pa.set_element(1, 9)
                visible = pa.get_element(1)
            else:
                visible = None
            ctx.rmi_fence()
            return visible

        assert run(prog, nlocs=2, machine="cray5")[0] == 9

    def test_toggle_returns_previous(self):
        prev = set_zero_copy(True)
        assert zero_copy_enabled()
        assert set_zero_copy(prev) is True
        assert zero_copy_enabled() == prev


class TestZeroCopyAliasing:
    def test_range_reads_do_not_alias_owner_storage(self, zero_copy):
        def prog(ctx):
            pa = PArray(ctx, ctx.nlocs * 4, dtype=int)
            ctx.rmi_fence()
            peer = (ctx.id + 1) % ctx.nlocs
            slab = pa.get_range(peer * 4, peer * 4 + 4)
            slab[:] = -1  # must not write through to the owner
            ctx.rmi_fence()
            return pa.to_list()

        out = run(prog, nlocs=4, machine="cray5")
        assert out[0] == [0] * 16

    def test_block_reads_do_not_alias_owner_storage(self, zero_copy):
        def prog(ctx):
            pm = PMatrix(ctx, 4, 4)
            ctx.rmi_fence()
            block = pm.get_block(0, 4, 0, 4)
            block[:] = -1.0
            ctx.rmi_fence()
            return pm.to_nested()

        out = run(prog, nlocs=4, machine="cray5")
        assert out[0] == [[0.0] * 4 for _ in range(4)]


class TestNodeAwareRouting:
    def test_exchange_coalesces_per_remote_node(self):
        def prog(ctx):
            slabs = [np.full(16, ctx.id * ctx.nlocs + d)
                     for d in range(ctx.nlocs)]
            got = ctx.bulk_exchange(slabs, nelems=16 * ctx.nlocs)
            ctx.rmi_fence()
            return [int(r[0]) for r in got]

        packed = run_detailed(prog, nlocs=8, machine="cray4",
                              placement="packed")
        spread = run_detailed(prog, nlocs=8, machine="cray4",
                              placement="spread")
        for rep in (packed, spread):
            for d, got in enumerate(rep.results):
                assert got == [s * 8 + d for s in range(8)]
        assert (packed.stats.total.physical_messages
                < spread.stats.total.physical_messages)
        assert packed.stats.total.coalesced_messages == 8  # one per sender
        assert spread.stats.total.coalesced_messages == 0

    def test_combining_flush_coalesces_at_fence(self):
        def prog(ctx):
            hm = PHashMap(ctx)
            ctx.rmi_fence()
            for d in range(ctx.nlocs):
                for i in range(4):
                    hm.accumulate((d, i), 1)
            ctx.rmi_fence()
            return sorted(hm.to_dict().items())

        packed = run_detailed(prog, nlocs=8, machine="cray4",
                              placement="packed")
        spread = run_detailed(prog, nlocs=8, machine="cray4",
                              placement="spread")
        assert packed.results[0] == spread.results[0]
        assert packed.stats.total.coalesced_messages > 0
        assert spread.stats.total.coalesced_messages == 0
        assert (packed.stats.total.physical_messages
                < spread.stats.total.physical_messages)

    def test_coalesced_flush_preserved_by_os_fence(self):
        # the scatter forwards carry the originating location, so a
        # one-sided fence completes them too
        def prog(ctx):
            hm = PHashMap(ctx)
            ctx.rmi_fence()
            if ctx.id == 0:
                for d in range(ctx.nlocs):
                    hm.accumulate((d, 0), 5)
                ctx.os_fence()
                done = [hm.find_val((d, 0)) for d in range(ctx.nlocs)]
            else:
                done = None
            ctx.rmi_fence()
            return done

        out = run(prog, nlocs=8, machine="cray4")
        assert out[0] == [(5, True)] * 8

    def test_redistribution_unchanged_by_topology(self):
        from repro.core.partitions import BlockCyclicPartition

        def prog(ctx):
            pa = PArray(ctx, 64, dtype=int)
            ctx.rmi_fence()
            for g in range(ctx.id, 64, ctx.nlocs):
                pa.set_element(g, g * 3)
            ctx.rmi_fence()
            pa.redistribute(BlockCyclicPartition(num_parts=16, block=4))
            return pa.to_list()

        for placement in ("packed", "spread"):
            out = run(prog, nlocs=8, machine="cray4", placement=placement)
            assert out[0] == [g * 3 for g in range(64)]
