"""Migration-subsystem tests: forwarding chains that cross a migration,
flavour preservation, lookup-cache epochs, and load-driven rebalancing on
every container family."""

from repro.containers.associative import PHashMap, PMap
from repro.containers.parray import PArray
from repro.containers.pgraph import PGraph
from repro.containers.plist import PList
from repro.containers.pmatrix import PMatrix
from repro.containers.pvector import PVector
from repro.core.migration import lpt_assignment, set_lookup_cache
from tests.conftest import run, run_detailed


class TestInFlightAcrossMigration:
    """Start an async/sync/opaque invoke, migrate the owning bContainer,
    and assert the request terminates at the new owner with the caller's
    flavour preserved (no silent async -> sync conversion)."""

    def _async_cross(self, make, set_op, get_op, gid, bcid):
        """Generic scenario: location 0 fires an async op at the bContainer
        on location 1, everyone migrates that bContainer to the last
        location, then a fence completes the op at its new home."""
        def prog(ctx):
            c = make(ctx)
            ctx.rmi_fence()
            sync_before = ctx.stats.sync_rmi_sent
            if ctx.id == 0:
                set_op(c, gid)
            c.migrate({bcid: ctx.nlocs - 1})
            sync_during = ctx.stats.sync_rmi_sent - sync_before
            ctx.rmi_fence()
            return (get_op(c, gid), sync_during,
                    ctx.stats.stale_redirects)
        return run(prog, nlocs=4)

    def test_parray_async(self):
        out = self._async_cross(
            lambda ctx: PArray(ctx, 16, dtype=int),
            lambda c, gid: c.set_element(gid, 99),
            lambda c, gid: c.get_element(gid),
            gid=5, bcid=1)  # gids 4..7 live in bContainer 1 (on location 1)
        assert all(o[0] == 99 for o in out)
        # the async op was redirected, never converted into a sync round trip
        assert all(o[1] == 0 for o in out)
        assert sum(o[2] for o in out) >= 1

    def test_pvector_async(self):
        out = self._async_cross(
            lambda ctx: PVector(ctx, 16),
            lambda c, gid: c.set_element(gid, 77),
            lambda c, gid: c.get_element(gid),
            gid=5, bcid=1)
        assert all(o[0] == 77 for o in out)
        assert all(o[1] == 0 for o in out)
        assert sum(o[2] for o in out) >= 1

    def test_pmatrix_async(self):
        out = self._async_cross(
            lambda ctx: PMatrix(ctx, 4, 4, value=0.0),
            lambda c, gid: c.set_element(gid, 3.5),
            lambda c, gid: c.get_element(gid),
            gid=(1, 2), bcid=1)
        assert all(o[0] == 3.5 for o in out)
        assert all(o[1] == 0 for o in out)
        assert sum(o[2] for o in out) >= 1

    def test_plist_async(self):
        out = self._async_cross(
            lambda ctx: PList(ctx, 8, value=0),
            lambda c, gid: c.set_element(gid, 42),
            lambda c, gid: c.get_element(gid),
            gid=(1, 0), bcid=1)  # first element of segment 1
        assert all(o[0] == 42 for o in out)
        assert all(o[1] == 0 for o in out)
        assert sum(o[2] for o in out) >= 1

    def test_phashmap_async(self):
        def prog(ctx):
            hm = PHashMap(ctx)
            key = 1  # stable_hash(1) % 4 == 2: bucket 2, owned by loc 2
            bcid = hm.partition.find(key).bcid
            if ctx.id == 0:
                hm.insert(key, "v")
            ctx.rmi_fence()
            sync_before = ctx.stats.sync_rmi_sent
            if ctx.id == 0:
                hm.set_element(key, "w")  # async, combining-eligible
            hm.migrate({bcid: ctx.nlocs - 1})
            sync_during = ctx.stats.sync_rmi_sent - sync_before
            ctx.rmi_fence()
            return (hm.find(key), sync_during, ctx.stats.stale_redirects)
        out = run(prog, nlocs=4)
        assert all(o[0] == "w" for o in out)
        assert all(o[1] == 0 for o in out)
        assert sum(o[2] for o in out) >= 1

    def test_pgraph_async(self):
        def prog(ctx):
            # vds blocked over 4 bContainers: vd 5 lives in bContainer 2
            g = PGraph(ctx, 8, dynamic=True, default_property=0)
            vd, bcid = 5, 2
            ctx.rmi_fence()
            if ctx.id == 0:
                g.vertex_property(vd)  # warm the route (home replies)
            ctx.rmi_fence()
            sync_before = ctx.stats.sync_rmi_sent
            if ctx.id == 0:
                # cached route: the combined op ships straight to the
                # (soon to be stale) owner
                g.set_vertex_property(vd, "p")
            g.migrate({bcid: ctx.nlocs - 1})
            sync_during = ctx.stats.sync_rmi_sent - sync_before
            ctx.rmi_fence()
            return (g.vertex_property(vd), sync_during,
                    ctx.stats.stale_redirects)
        out = run(prog, nlocs=4)
        assert all(o[0] == "p" for o in out)
        assert all(o[1] == 0 for o in out)
        assert sum(o[2] for o in out) >= 1

    def test_opaque_future_resolves_at_new_owner(self):
        def prog(ctx):
            pa = PArray(ctx, 16, dtype=int)
            for i in range(ctx.id, 16, ctx.nlocs):
                pa.set_element(i, i * 3)
            ctx.rmi_fence()
            fut = None
            if ctx.id == 0:
                fut = pa.split_phase_get_element(5)
            pa.migrate({1: ctx.nlocs - 1})
            ctx.rmi_fence()
            return fut.get() if fut is not None else None
        out = run(prog, nlocs=4)
        assert out[0] == 15

    def test_sync_after_migration_re_resolves(self):
        def prog(ctx):
            pa = PArray(ctx, 16, dtype=int)
            pa.set_element(5, 1)
            ctx.rmi_fence()
            before = pa.get_element(5)
            pa.migrate({1: ctx.nlocs - 1})
            after = pa.get_element(5)
            return before, after, pa.lookup(5)
        out = run(prog, nlocs=4)
        assert all(o == (1, 1, 3) for o in out)


class TestLookupCacheEpochs:
    def test_cache_hits_and_epoch_invalidation(self):
        def prog(ctx):
            pa = PArray(ctx, 16, dtype=int)
            tgt = (ctx.id + 1) % ctx.nlocs * 4  # remote element
            ctx.rmi_fence()
            h0 = ctx.stats.lookup_cache_hits
            pa.get_element(tgt)               # miss: fills the run
            pa.get_element(tgt)               # hit
            pa.get_element(tgt + 1)           # hit (same cached run)
            hits = ctx.stats.lookup_cache_hits - h0
            epoch_before = pa.distribution_epoch()
            inval_before = ctx.stats.lookup_cache_invalidations
            pa.migrate({0: ctx.nlocs - 1})
            epoch_after = pa.distribution_epoch()
            h1 = ctx.stats.lookup_cache_hits
            pa.get_element(tgt)               # miss again: cache dropped
            first_after = ctx.stats.lookup_cache_hits - h1
            return (hits, epoch_after - epoch_before,
                    ctx.stats.lookup_cache_invalidations - inval_before,
                    first_after)
        out = run(prog, nlocs=4)
        for hits, depoch, dinval, first_after in out:
            assert hits == 2
            assert depoch == 1
            assert dinval == 1
            assert first_after == 0  # the post-migration access was a miss

    def test_cache_toggle_preserves_results(self):
        def prog(ctx):
            hm = PHashMap(ctx)
            if ctx.id == 0:
                for k in range(20):
                    hm.insert(k, k * k)
            ctx.rmi_fence()
            return [hm.find(k) for k in range(20)]
        outs = []
        for on in (True, False):
            prev = set_lookup_cache(on)
            try:
                outs.append(run(prog, nlocs=4))
            finally:
                set_lookup_cache(prev)
        assert outs[0] == outs[1]

    def test_stale_cached_route_re_forwards(self):
        """Delete a vertex and re-create it elsewhere: a location holding a
        cached (now stale) route must re-forward through the directory."""
        def prog(ctx):
            # vd 103: directory home on location 2, created on location 1,
            # later re-created on location 0, probed from location 3 — so
            # the probe's route really is learned remotely and goes stale
            vd = 103
            g = PGraph(ctx, 0, dynamic=True, default_property=0)
            if ctx.id == 1:
                g.add_vertex_with(vd, "first")
            ctx.rmi_fence()
            # location 3 learns the route (forwarding + route update)
            if ctx.id == 3:
                g.set_vertex_property(vd, "seen")
            ctx.rmi_fence()
            if ctx.id == 1:
                g.delete_vertex(vd)
            ctx.rmi_fence()
            if ctx.id == 0:
                g.add_vertex_with(vd, "second")
            ctx.rmi_fence()
            val, cached = None, None
            if ctx.id == 3:
                cached = g._dist._cache.lookup(vd)
                val = g.apply_vertex_get(vd, lambda v: v.property)
            ctx.rmi_fence()
            return val, cached, ctx.stats.stale_redirects
        out = run(prog, nlocs=4)
        assert out[3][1] == 1  # the stale route really was cached
        assert out[3][0] == "second"
        assert sum(o[2] for o in out) >= 1

    def test_stale_local_route_re_forwards(self):
        """A stale cached route that resolves to the *requesting* location
        itself must also re-forward, not execute against the local
        bContainer (which no longer holds the vertex)."""
        def prog(ctx):
            # vd 2: directory home on location 1; created on location 0
            vd = 2
            g = PGraph(ctx, 0, dynamic=True, default_property=0)
            if ctx.id == 0:
                g.add_vertex_with(vd, "first")
            ctx.rmi_fence()
            if ctx.id == 0:
                g.set_vertex_property(vd, "seen")  # forwarded: home replies
            ctx.rmi_fence()
            if ctx.id == 0:
                g.delete_vertex(vd)
            ctx.rmi_fence()
            if ctx.id == 1:
                g.add_vertex_with(vd, "second")
            ctx.rmi_fence()
            val, cached = None, None
            if ctx.id == 0:
                cached = g._dist._cache.lookup(vd)
                val = g.vertex_property(vd)
            ctx.rmi_fence()
            return val, cached, ctx.stats.stale_redirects
        out = run(prog, nlocs=4)
        assert out[0][1] == 0  # loc 0 still holds its own (stale) route
        assert out[0][0] == "second"
        assert sum(o[2] for o in out) >= 1


class TestRebalance:
    def test_rebalance_spreads_skewed_hashmap(self):
        def prog(ctx):
            hm = PHashMap(ctx, num_bcontainers=4 * ctx.nlocs)
            if ctx.id == 0:
                for k in range(200):
                    hm.insert(f"k{k}", k)
            ctx.rmi_fence()
            before = hm.to_dict()
            max_before = ctx.allreduce_rmi(hm.local_size(), max)
            hm.rebalance()
            max_after = ctx.allreduce_rmi(hm.local_size(), max)
            return (before == hm.to_dict(), max_before, max_after,
                    ctx.stats.bcontainers_migrated)
        out = run(prog, nlocs=4)
        assert all(o[0] for o in out)
        # the heaviest location sheds load (bin packing over 16 buckets)
        assert out[0][2] <= out[0][1]
        assert sum(o[3] for o in out) >= 1

    def test_rebalance_every_container_family(self):
        def prog(ctx):
            pa = PArray(ctx, 16, dtype=int)
            pv = PVector(ctx, 12, value=2)
            pl = PList(ctx, 9, value=1)
            pm = PMatrix(ctx, 4, 4, value=1.0)
            hm = PMap(ctx)
            g = PGraph(ctx, 8, dynamic=True, default_property=0)
            if ctx.id == 0:
                hm.insert_range((k, k) for k in range(12))
            ctx.rmi_fence()
            pa.rebalance(policy="load")
            pm.rebalance(policy="load")
            for c in (pv, pl, hm, g):
                c.rebalance()
            return (pa.to_list(), pv.to_list(), pl.to_list(),
                    pm.to_nested(), sorted(hm.to_dict().items()),
                    g.num_vertices_sync())
        out = run(prog, nlocs=3)
        pa_l, pv_l, pl_l, pm_n, hm_d, nv = out[0]
        assert pa_l == [0] * 16
        assert pv_l == [2] * 12
        assert pl_l == [1] * 9
        assert pm_n == [[1.0] * 4 for _ in range(4)]
        assert hm_d == [(k, k) for k in range(12)]
        assert nv == 8
        assert all(o == out[0] for o in out)

    def test_lpt_assignment_deterministic_and_balanced(self):
        loads = {0: 10.0, 1: 1.0, 2: 1.0, 3: 1.0, 4: 4.0, 5: 4.0}
        a = lpt_assignment(loads, (0, 1, 2))
        assert a == lpt_assignment(loads, (0, 1, 2))
        per_member = {}
        for bcid, m in a.items():
            per_member[m] = per_member.get(m, 0) + loads[bcid]
        assert max(per_member.values()) == 10.0  # heaviest alone in a bin

    def test_migrate_range_hands_over_ownership(self):
        def prog(ctx):
            pa = PArray(ctx, 16, dtype=int)
            for i in range(ctx.id, 16, ctx.nlocs):
                pa.set_element(i, i)
            ctx.rmi_fence()
            pa.migrate_range(4, 12, ctx.nlocs - 1)
            return (pa.lookup(4), pa.lookup(11), pa.lookup(0),
                    pa.to_list())
        out = run(prog, nlocs=4)
        assert out[0][0] == 3 and out[0][1] == 3
        assert out[0][2] == 0
        assert out[0][3] == list(range(16))

    def test_migrate_validates_assignment(self):
        def prog(ctx):
            pa = PArray(ctx, 8, dtype=int)
            try:
                pa.migrate({0: 99})
                return False
            except ValueError:
                ctx.barrier()  # keep the collective structure aligned
                return True
        assert all(run(prog, nlocs=2))

    def test_migration_counters(self):
        def prog(ctx):
            pa = PArray(ctx, 16, dtype=int)
            pa.migrate({0: 1, 1: 0})
            ctx.rmi_fence()
            return (ctx.stats.bcontainers_migrated,
                    ctx.stats.migration_elements_moved)
        rep = run_detailed(prog, nlocs=4)
        total = rep.stats.total
        assert total.bcontainers_migrated == 2
        assert total.migration_elements_moved == 8  # two blocks of 4


class TestDirectoryEntryMigration:
    def test_home_entries_move_with_their_bcid(self):
        """Directory lookups must keep resolving after the home bContainer
        (and therefore its directory entries) migrates."""
        def prog(ctx):
            g = PGraph(ctx, 16, dynamic=True, default_property=0)
            ctx.rmi_fence()
            # move every bContainer one location to the right
            assignment = {
                b: g.group.members[(g.group.index_of(g.mapper.map(b)) + 1)
                                   % len(g.group)]
                for b in range(g.partition.size())}
            g.migrate(assignment)
            ctx.rmi_fence()
            ok = all(g.has_vertex(v) for v in range(16))
            deg = [g.out_degree(v) for v in range(16)]
            return ok, deg
        out = run(prog, nlocs=4)
        assert all(o[0] for o in out)
        assert all(o[1] == [0] * 16 for o in out)
