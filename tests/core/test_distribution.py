"""Distribution-manager, thread-safety and redistribution tests
(Ch. V.C.6, VI, V.G)."""


from repro.containers.parray import PArray
from repro.containers.pgraph import PGraph
from repro.core import (
    BlockCyclicPartition,
    BlockedMapper,
    ConsistencyMode,
    GeneralMapper,
    HashedLockManager,
    NoLockManager,
    Traits,
)
from repro.core.memory import measure_memory
from tests.conftest import run, run_detailed


class TestInvokeFlavours:
    def test_sequential_traits_make_async_synchronous(self):
        def prog(ctx):
            pa = PArray(ctx, 8, dtype=int,
                        traits=Traits(consistency=ConsistencyMode.SEQUENTIAL))
            tgt = (ctx.id + 1) % ctx.nlocs * 2  # remote element
            pa.set_element(tgt, 5)
            # no fence: under SC traits the write has already completed
            val = ctx.sync_rmi(pa.lookup(tgt), pa.handle,
                               "_invoke_handler_ret", "get_element", tgt, ())
            ctx.rmi_fence()
            return val
        assert run(prog, nlocs=4) == [5] * 4

    def test_sequential_split_phase_preresolved(self):
        def prog(ctx):
            pa = PArray(ctx, 4, dtype=int,
                        traits=Traits(consistency=ConsistencyMode.SEQUENTIAL))
            f = pa.split_phase_get_element(0)
            ready = f.test()
            ctx.rmi_fence()
            return ready, f.get()
        assert run(prog, nlocs=2) == [(True, 0)] * 2

    def test_local_vs_remote_counted(self):
        def prog(ctx):
            pa = PArray(ctx, 8, dtype=int)
            block = 8 // ctx.nlocs
            pa.get_element(ctx.id * block)            # local
            pa.get_element((ctx.id + 1) % ctx.nlocs * block)  # remote
            ctx.rmi_fence()
        rep = run_detailed(prog, nlocs=4)
        assert rep.stats.total.local_invocations >= 4
        assert rep.stats.total.remote_invocations == 4


class TestCustomModules:
    def test_custom_mapper_via_traits(self):
        def prog(ctx):
            traits = Traits(mapper_factory=BlockedMapper)
            pa = PArray(ctx, 8, dtype=int,
                        partition=BlockCyclicPartition(4, 1), traits=traits)
            return pa.lookup(0), pa.lookup(1)
        out = run(prog, nlocs=2)
        # 4 sub-domains blocked onto 2 locations: bcids {0,1}->0, {2,3}->1
        assert out[0] == (0, 0)

    def test_general_mapper(self):
        def prog(ctx):
            pa = PArray(ctx, 8, dtype=int)
            pa.redistribute(BlockCyclicPartition(2, 2),
                            GeneralMapper([1, 0]))
            return pa.lookup(0)
        assert run(prog, nlocs=2) == [1, 1]

    def test_custom_bcontainer_factory(self):
        from repro.core.base_containers import ArrayBC

        made = []

        def factory(sub, bcid):
            made.append(bcid)
            return ArrayBC(sub, bcid, fill=7, dtype=int)

        def prog(ctx):
            pa = PArray(ctx, 8, dtype=int,
                        traits=Traits(bcontainer_factory=factory))
            return pa.get_element(0)
        assert run(prog, nlocs=2) == [7, 7]
        assert made


class TestThreadSafety:
    def test_default_manager_counts_locks(self):
        def prog(ctx):
            pa = PArray(ctx, 8, dtype=int)
            for i in range(4):
                pa.set_element(i % 8, 1)
            ctx.rmi_fence()
            return pa._dist.ths_manager.element_locks
        out = run(prog, nlocs=2)
        assert sum(out) >= 8  # each execution locked at element granularity

    def test_no_lock_manager(self):
        def prog(ctx):
            traits = Traits(ths_manager_factory=NoLockManager)
            pa = PArray(ctx, 8, dtype=int, traits=traits)
            pa.set_element(0, 1)
            ctx.rmi_fence()
            return ctx.stats.lock_acquires
        assert run(prog, nlocs=2) == [0, 0]

    def test_hashed_lock_manager_distributes(self):
        def prog(ctx):
            traits = Traits(ths_manager_factory=lambda: HashedLockManager(k=8))
            pa = PArray(ctx, 64, dtype=int, traits=traits)
            block = 64 // ctx.nlocs
            for i in range(block):
                pa.set_element(ctx.id * block + i, 1)
            ctx.rmi_fence()
            mgr = pa._dist.ths_manager
            return sum(1 for c in mgr.per_lock if c), sum(mgr.per_lock)
        out = run(prog, nlocs=2)
        used, total = out[0]
        assert used > 1 and total == 32

    def test_thread_safe_bcontainer_skips_locking(self):
        def prog(ctx):
            traits = Traits(bcontainer_thread_safe=True)
            pa = PArray(ctx, 8, dtype=int, traits=traits)
            pa.set_element(0, 1)
            ctx.rmi_fence()
            return pa._dist.ths_manager.element_locks
        assert run(prog, nlocs=2) == [0, 0]

    def test_locking_policy_table(self):
        def prog(ctx):
            pa = PArray(ctx, 4, dtype=int)
            pol = pa._dist.partition.locking_policy
            return pol.get_locking_policy("set_element")[0].value
        assert run(prog, nlocs=1) == ["element"]

    def test_lock_cost_charged(self):
        def prog(ctx, use_locks):
            traits = None if use_locks else Traits(
                ths_manager_factory=NoLockManager)
            pa = PArray(ctx, 8, dtype=int, traits=traits)
            ctx.rmi_fence()
            t0 = ctx.start_timer()
            for _ in range(50):
                pa.set_element(ctx.id, 1)
            ctx.rmi_fence()
            return ctx.stop_timer(t0)
        locked = max(run(prog, nlocs=2, machine="cray4", args=(True,)))
        unlocked = max(run(prog, nlocs=2, machine="cray4", args=(False,)))
        assert locked > unlocked


class TestRedistribution:
    def test_redistribute_requires_proxy(self):
        def prog(ctx):
            traits = Traits(use_partition_proxy=False)
            pa = PArray(ctx, 8, dtype=int, traits=traits)
            try:
                pa.redistribute(BlockCyclicPartition(ctx.nlocs, 1))
                return False
            except TypeError:
                return True
        assert all(run(prog, nlocs=2))

    def test_redistribute_preserves_content(self):
        def prog(ctx):
            pa = PArray(ctx, 16, dtype=int)
            for i in range(ctx.id, 16, ctx.nlocs):
                pa.set_element(i, i * i)
            ctx.rmi_fence()
            pa.redistribute(BlockCyclicPartition(ctx.nlocs, 1))
            return pa.to_list()
        out = run(prog, nlocs=4)
        assert out[0] == [i * i for i in range(16)]

    def test_rotate_moves_ownership(self):
        def prog(ctx):
            pa = PArray(ctx, 8, dtype=int)
            before = pa.lookup(0)
            pa.rotate(1)
            after = pa.lookup(0)
            return before, after
        out = run(prog, nlocs=4)
        assert out[0] == (0, 1)

    def test_rebalance_after_skew(self):
        def prog(ctx):
            from repro.core import ExplicitPartition

            pa = PArray(ctx, 12, dtype=int,
                        partition=ExplicitPartition([12, 0, 0, 0]))
            for i in range(ctx.id, 12, ctx.nlocs):
                pa.set_element(i, i)
            ctx.rmi_fence()
            pa.rebalance()
            sizes = [bc.size() for bc in pa.local_bcontainers()]
            return sum(sizes), pa.to_list()
        out = run(prog, nlocs=4)
        assert [s for s, _ in out] == [3, 3, 3, 3]
        assert out[0][1] == list(range(12))


class TestMemoryAccounting:
    def test_collective_memory_size(self):
        def prog(ctx):
            pa = PArray(ctx, 128, dtype=float)
            return pa.memory_size()
        out = run(prog, nlocs=4)
        meta, data = out[0]
        assert data == 128 * 8
        assert all(o == out[0] for o in out)

    def test_measure_memory_report(self):
        def prog(ctx):
            pa = PArray(ctx, 64, dtype=float)
            rep = measure_memory(pa)
            return rep.data, rep.metadata, rep.overhead_ratio
        data, meta, ratio = run(prog, nlocs=2)[0]
        assert data == 512 and meta > 0 and ratio == meta / data

    def test_graph_memory_includes_edges(self):
        def prog(ctx):
            g = PGraph(ctx, 8)
            if ctx.id == 0:
                for v in range(7):
                    g.add_edge_async(v, v + 1)
            ctx.rmi_fence()
            return g.memory_size()
        meta_with_edges, _ = run(prog, nlocs=2)[0]

        def prog_empty(ctx):
            g = PGraph(ctx, 8)
            ctx.rmi_fence()
            return g.memory_size()
        meta_empty, _ = run(prog_empty, nlocs=2)[0]
        assert meta_with_edges > meta_empty
