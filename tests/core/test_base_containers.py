"""bContainer tests (Ch. V.C.1, Table III)."""

import numpy as np
import pytest

from repro.core.base_containers import (
    ArrayBC,
    GraphBC,
    ListBC,
    MapBC,
    Matrix2DBC,
    MultiMapBC,
    SetBC,
    VectorBC,
)
from repro.core.domains import Range2DDomain, RangeDomain, UniverseDomain


class TestArrayBC:
    def test_get_set(self):
        bc = ArrayBC(RangeDomain(10, 14), 0, fill=1, dtype=int)
        assert bc.size() == 4
        bc.set(12, 9)
        assert bc.get(12) == 9
        assert bc.get(10) == 1
        assert isinstance(bc.get(12), int)  # python scalar, not np.generic

    def test_apply(self):
        bc = ArrayBC(RangeDomain(0, 3), 0, fill=2, dtype=int)
        assert bc.apply(1, lambda v: v * 10) == 20
        bc.apply_set(1, lambda v: v + 1)
        assert bc.get(1) == 3

    def test_bulk_ops(self):
        bc = ArrayBC(RangeDomain(0, 4), 0, dtype=float)
        bc.bulk_fill(2.0)
        bc.bulk_map(lambda a: a * 3)
        assert bc.values().tolist() == [6.0] * 4
        assert bc.bulk_reduce(np.sum) == 24.0

    def test_object_dtype(self):
        bc = ArrayBC(RangeDomain(0, 2), 0, fill=None, dtype=object)
        bc.set(0, {"a": 1})
        assert bc.get(0) == {"a": 1}

    def test_pack_unpack(self):
        bc = ArrayBC(RangeDomain(0, 3), 0, fill=5, dtype=int)
        payload = bc.pack()
        clone = ArrayBC.unpack(RangeDomain(0, 3), 0, payload)
        assert clone.values().tolist() == [5, 5, 5]

    def test_memory_split(self):
        bc = ArrayBC(RangeDomain(0, 100), 0, dtype=np.float64)
        meta, data = bc.memory_size()
        assert data == 800 and meta > 0

    def test_clear_and_bcid(self):
        bc = ArrayBC(RangeDomain(0, 3), 7, fill=4, dtype=int)
        assert bc.get_bcid() == 7
        bc.clear()
        assert bc.values().tolist() == [0, 0, 0]

    def test_data_length_check(self):
        with pytest.raises(ValueError):
            ArrayBC(RangeDomain(0, 3), 0, data=[1, 2])


class TestMatrix2DBC:
    def test_block_addressing(self):
        dom = Range2DDomain((2, 4), (4, 7))
        bc = Matrix2DBC(dom, 0, fill=0.0)
        bc.set((3, 5), 7.5)
        assert bc.get((3, 5)) == 7.5
        assert bc.size() == 6

    def test_slices(self):
        dom = Range2DDomain((0, 0), (2, 3))
        bc = Matrix2DBC(dom, 0, data=np.arange(6.0))
        assert bc.row_slice(1).tolist() == [3.0, 4.0, 5.0]
        assert bc.col_slice(2).tolist() == [2.0, 5.0]

    def test_pack_roundtrip(self):
        dom = Range2DDomain((0, 0), (2, 2))
        bc = Matrix2DBC(dom, 0, fill=3.0)
        clone = Matrix2DBC.unpack(dom, 0, bc.pack())
        assert clone.get((1, 1)) == 3.0


class TestVectorBC:
    def test_dynamic_ops(self):
        bc = VectorBC(RangeDomain(0, 3), 0, fill=0)
        bc.insert(1, 99)
        assert bc.values() == [0, 99, 0, 0]
        assert bc.erase(1) == 99
        bc.push_back(5)
        assert bc.pop_back() == 5
        assert bc.size() == 3

    def test_apply(self):
        bc = VectorBC(RangeDomain(0, 2), 0, fill=1)
        bc.apply_set(0, lambda v: v + 9)
        assert bc.apply(0, lambda v: v) == 10

    def test_pack(self):
        bc = VectorBC(RangeDomain(0, 2), 0, data=[7, 8])
        assert VectorBC.unpack(RangeDomain(0, 2), 0, bc.pack()).values() == [7, 8]


class TestListBC:
    def _bc(self):
        return ListBC(UniverseDomain(), 0)

    def test_push_pop_order(self):
        bc = self._bc()
        bc.push_back(1)
        bc.push_back(2)
        bc.push_front(0)
        assert bc.values() == [0, 1, 2]
        assert bc.pop_front() == 0
        assert bc.pop_back() == 2
        assert bc.values() == [1]

    def test_stable_handles_across_inserts(self):
        bc = self._bc()
        s1 = bc.push_back("a")
        s2 = bc.push_back("c")
        s_mid = bc.insert_before(s2, "b")
        assert bc.values() == ["a", "b", "c"]
        assert bc.get(s1) == "a" and bc.get(s_mid) == "b"
        bc.erase(s_mid)
        assert bc.values() == ["a", "c"]
        assert bc.get(s2) == "c"  # handle survives neighbours' erasure

    def test_traversal_helpers(self):
        bc = self._bc()
        seqs = [bc.push_back(v) for v in "xyz"]
        assert bc.first_seq() == seqs[0]
        assert bc.last_seq() == seqs[2]
        assert bc.next_seq(seqs[0]) == seqs[1]
        assert bc.prev_seq(seqs[2]) == seqs[1]
        assert bc.next_seq(seqs[2]) is None
        assert bc.seqs() == seqs

    def test_erase_head_tail(self):
        bc = self._bc()
        a = bc.push_back(1)
        b = bc.push_back(2)
        bc.erase(a)
        assert bc.first_seq() == b
        bc.erase(b)
        assert bc.first_seq() is None and bc.last_seq() is None

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            self._bc().pop_back()
        with pytest.raises(IndexError):
            self._bc().pop_front()

    def test_pack_preserves_order(self):
        bc = self._bc()
        for v in (3, 1, 2):
            bc.push_back(v)
        clone = ListBC.unpack(UniverseDomain(), 0, bc.pack())
        assert clone.values() == [3, 1, 2]

    def test_metadata_dominates_memory(self):
        bc = self._bc()
        for v in range(10):
            bc.push_back(v)
        meta, data = bc.memory_size()
        assert meta > data  # node headers > payload


class TestMapBC:
    def test_insert_no_overwrite(self):
        bc = MapBC(UniverseDomain(), 0)
        assert bc.insert("k", 1)
        assert not bc.insert("k", 2)  # STL map insert semantics
        assert bc.get("k") == 1
        bc.set("k", 2)
        assert bc.get("k") == 2

    def test_find_erase(self):
        bc = MapBC(UniverseDomain(), 0)
        bc.insert("a", 1)
        assert bc.find("a") == (1, True)
        assert bc.find("b") == (None, False)
        assert bc.erase("a") == 1
        assert bc.erase("a") == 0

    def test_sorted_iteration(self):
        bc = MapBC(UniverseDomain(), 0, sorted_order=True)
        for k in (3, 1, 2):
            bc.insert(k, k * 10)
        assert bc.keys() == [1, 2, 3]
        assert bc.items() == [(1, 10), (2, 20), (3, 30)]

    def test_accumulate(self):
        bc = MapBC(UniverseDomain(), 0)
        bc.accumulate("w", 1)
        bc.accumulate("w", 2)
        assert bc.get("w") == 3


class TestMultiMapBC:
    def test_duplicate_keys(self):
        bc = MultiMapBC(UniverseDomain(), 0)
        bc.insert("k", 1)
        bc.insert("k", 2)
        assert bc.count("k") == 2
        assert bc.erase("k") == 2
        assert bc.count("k") == 0


class TestSetBC:
    def test_unique(self):
        bc = SetBC(UniverseDomain(), 0)
        assert bc.insert(5)
        assert not bc.insert(5)
        assert bc.size() == 1
        assert bc.contains(5)

    def test_multi(self):
        bc = SetBC(UniverseDomain(), 0, multi=True)
        bc.insert(5)
        bc.insert(5)
        assert bc.count(5) == 2
        assert bc.size() == 2
        assert bc.values() == [5, 5]

    def test_sorted_keys(self):
        bc = SetBC(UniverseDomain(), 0, sorted_order=True)
        for k in (3, 1, 2):
            bc.insert(k)
        assert bc.keys() == [1, 2, 3]


class TestGraphBC:
    def test_vertices_edges(self):
        bc = GraphBC(UniverseDomain(), 0)
        assert bc.add_vertex(0, "p0")
        assert not bc.add_vertex(0)
        bc.add_vertex(1)
        bc.add_edge(0, 1, "e")
        assert bc.has_edge(0, 1)
        assert bc.out_degree(0) == 1
        assert bc.adjacents(0) == [1]
        assert bc.edges_of(0) == [(0, 1, "e")]
        assert bc.num_edges() == 1

    def test_multi_edges_flag(self):
        multi = GraphBC(UniverseDomain(), 0, multi_edges=True)
        multi.add_vertex(0)
        assert multi.add_edge(0, 0) and multi.add_edge(0, 0)
        assert multi.out_degree(0) == 2
        simple = GraphBC(UniverseDomain(), 0, multi_edges=False)
        simple.add_vertex(0)
        assert simple.add_edge(0, 0)
        assert not simple.add_edge(0, 0)

    def test_delete(self):
        bc = GraphBC(UniverseDomain(), 0)
        bc.add_vertex(0)
        bc.add_vertex(1)
        bc.add_edge(0, 1)
        assert bc.delete_edge(0, 1)
        assert not bc.delete_edge(0, 1)
        assert bc.delete_vertex(1)
        assert not bc.has_vertex(1)
        assert bc.num_edges() == 0

    def test_properties(self):
        bc = GraphBC(UniverseDomain(), 0)
        bc.add_vertex(3, "x")
        assert bc.vertex_property(3) == "x"
        bc.set_vertex_property(3, "y")
        assert bc.vertex_property(3) == "y"
        assert bc.apply_vertex(3, lambda v: v.property) == "y"

    def test_pack_roundtrip(self):
        bc = GraphBC(UniverseDomain(), 0)
        bc.add_vertex(0, "a")
        bc.add_vertex(1)
        bc.add_edge(0, 1, 5)
        clone = GraphBC.unpack(UniverseDomain(), 0, bc.pack())
        assert clone.has_edge(0, 1)
        assert clone.vertex_property(0) == "a"
        assert clone.num_edges() == 1
