"""Cost-model/aliasing regressions: Matrix2DBC slice accessors must copy
(no free remote mutation of owner storage in the shared-address-space
simulator), and ``estimate_size`` must charge numpy scalars as scalars."""

import numpy as np
import pytest

from repro.containers.pmatrix import PMatrix
from repro.core.base_containers import Matrix2DBC
from repro.core.domains import Range2DDomain
from repro.runtime.comm import estimate_size
from tests.conftest import run


class TestMatrixSliceAliasing:
    def _bc(self):
        dom = Range2DDomain((0, 0), (2, 3))
        return Matrix2DBC(dom, 0, data=np.arange(6.0))

    def test_row_slice_is_a_copy(self):
        bc = self._bc()
        row = bc.row_slice(1)
        row[:] = -1.0
        assert bc.get((1, 0)) == 3.0
        assert bc.row_slice(1).tolist() == [3.0, 4.0, 5.0]

    def test_col_slice_is_a_copy(self):
        bc = self._bc()
        col = bc.col_slice(2)
        col[:] = -1.0
        assert bc.get((0, 2)) == 2.0
        assert bc.col_slice(2).tolist() == [2.0, 5.0]

    def test_set_slices_write_through(self):
        bc = self._bc()
        bc.set_row_slice(0, [9.0, 8.0, 7.0])
        bc.set_col_slice(0, [1.5, 2.5])
        assert bc.row_slice(0).tolist() == [1.5, 8.0, 7.0]
        assert bc.col_slice(0).tolist() == [1.5, 2.5]

    def test_remote_row_mutation_does_not_leak(self):
        """A location that fetches a remote row and mutates the returned
        buffer must not alter the owner's storage."""

        def prog(ctx):
            pm = PMatrix(ctx, 4, 4, value=1.0)
            ctx.rmi_fence()
            row = np.asarray(pm.get_row(0), dtype=float)
            row[:] = 99.0  # tampering with the fetched copy
            ctx.rmi_fence()
            return pm.get_row(0)

        out = run(prog, nlocs=4)
        assert all(r == [1.0] * 4 for r in out)


class TestEstimateSizeNumpyScalars:
    @pytest.mark.parametrize("value", [
        np.int8(3), np.int32(3), np.int64(-9), np.uint64(9),
        np.float32(1.5), np.float64(2.5), np.bool_(True),
    ])
    def test_numpy_scalar_is_eight_bytes(self, value):
        assert estimate_size(value) == 8

    @pytest.mark.parametrize("py, npv", [
        (3, np.int64(3)),
        (2.5, np.float64(2.5)),
        (True, np.bool_(True)),
    ])
    def test_numpy_scalar_matches_python_scalar(self, py, npv):
        assert estimate_size(npv) == estimate_size(py)

    def test_containers_of_numpy_scalars(self):
        arr = np.arange(10.0)
        scalars = [v for v in arr]  # np.float64 elements
        plain = [float(v) for v in arr]
        assert estimate_size(scalars) == estimate_size(plain)
        assert estimate_size((np.int32(1), np.float64(2.0))) == \
            estimate_size((1, 2.0))

    def test_ndarray_unchanged(self):
        a = np.zeros(100)
        assert estimate_size(a) == 64 + 800
