"""Partition and mapper tests (Ch. IV.B.4-5, V.C.4-5)."""

import pytest

from repro.core.domains import Range2DDomain, RangeDomain
from repro.core.mappers import BlockedMapper, CyclicMapper, GeneralMapper
from repro.core.partitions import (
    BalancedPartition,
    BlockCyclicPartition,
    BlockedPartition,
    DirectoryPartition,
    ExplicitPartition,
    HashPartition,
    ListPartition,
    Matrix2DPartition,
    RangePartition,
    UnbalancedBlockedPartition,
    balanced_sizes,
    split_domain,
    stable_hash,
)


def _partition_invariants(part, domain):
    """Def. 9: sub-domains are disjoint and their union is the domain."""
    seen = {}
    for bcid in range(part.size()):
        sub = part.get_sub_domain(bcid)
        for gid in sub:
            assert gid not in seen, f"{gid} in both {seen.get(gid)} and {bcid}"
            seen[gid] = bcid
    assert set(seen) == set(domain)
    # find() agrees with sub-domain membership
    for gid in domain:
        assert part.find(gid).bcid == seen[gid]


class TestSplitHelpers:
    def test_balanced_sizes(self):
        assert balanced_sizes(10, 3) == [4, 3, 3]
        assert balanced_sizes(2, 4) == [1, 1, 0, 0]
        assert sum(balanced_sizes(17, 5)) == 17

    def test_split_domain_ranges(self):
        parts = split_domain(RangeDomain(0, 10), [4, 3, 3])
        assert [(p.lo, p.hi) for p in parts] == [(0, 4), (4, 7), (7, 10)]

    def test_split_domain_size_mismatch(self):
        with pytest.raises(ValueError):
            split_domain(RangeDomain(0, 10), [4, 4])


class TestBalancedPartition:
    def test_paper_example(self):
        # partition_balanced(domain, 2) over [1..10]: {0..5, 6..10}
        p = BalancedPartition(2)
        p.set_domain(RangeDomain(0, 10))
        assert p.get_sub_domain_sizes() == [5, 5]
        _partition_invariants(p, RangeDomain(0, 10))

    def test_uneven(self):
        p = BalancedPartition(4)
        p.set_domain(RangeDomain(0, 10))
        assert p.get_sub_domain_sizes() == [3, 3, 2, 2]
        _partition_invariants(p, RangeDomain(0, 10))

    def test_fewer_elements_than_parts(self):
        p = BalancedPartition(8)
        p.set_domain(RangeDomain(0, 3))
        assert p.size() == 3
        _partition_invariants(p, RangeDomain(0, 3))

    def test_ordered_partition_interface(self):
        p = BalancedPartition(3)
        p.set_domain(RangeDomain(0, 9))
        assert p.get_first() == 0
        assert p.get_last() == 3
        assert p.get_next(0) == 1 and p.get_prev(2) == 1


class TestBlockedPartition:
    def test_paper_example(self):
        # partition_blocked(domain, 3) over 11 elements
        p = BlockedPartition(3)
        p.set_domain(RangeDomain(0, 11))
        assert p.get_sub_domain_sizes() == [3, 3, 3, 2]
        _partition_invariants(p, RangeDomain(0, 11))

    def test_bad_block(self):
        with pytest.raises(ValueError):
            BlockedPartition(0)


class TestBlockCyclicPartition:
    def test_block_one(self):
        p = BlockCyclicPartition(2, 1)
        p.set_domain(RangeDomain(0, 11))
        assert list(p.get_sub_domain(0)) == [0, 2, 4, 6, 8, 10]
        assert list(p.get_sub_domain(1)) == [1, 3, 5, 7, 9]
        _partition_invariants(p, RangeDomain(0, 11))

    def test_block_three(self):
        p = BlockCyclicPartition(2, 3)
        p.set_domain(RangeDomain(0, 11))
        assert list(p.get_sub_domain(0)) == [0, 1, 2, 6, 7, 8]
        _partition_invariants(p, RangeDomain(0, 11))


class TestExplicitPartition:
    def test_paper_example(self):
        p = ExplicitPartition([3, 4, 4])
        p.set_domain(RangeDomain(0, 11))
        assert [(d.lo, d.hi) for d in p.get_sub_domains()] == [
            (0, 3), (3, 7), (7, 11)]
        _partition_invariants(p, RangeDomain(0, 11))

    def test_invalid(self):
        with pytest.raises(ValueError):
            ExplicitPartition([])


class TestMatrix2DPartition:
    def test_grid(self):
        p = Matrix2DPartition(2, 2)
        dom = Range2DDomain((0, 0), (4, 6))
        p.set_domain(dom)
        assert p.size() == 4
        _partition_invariants(p, dom)
        assert p.block_coords(3) == (1, 1)

    def test_requires_2d(self):
        with pytest.raises(TypeError):
            Matrix2DPartition(2, 2).set_domain(RangeDomain(0, 4))


class TestUnbalancedBlockedPartition:
    def test_dynamic_resize(self):
        p = UnbalancedBlockedPartition(3)
        p.set_domain(RangeDomain(0, 9))
        assert p.find(4).bcid == 1
        p.grow(0)  # insert into block 0
        assert p.total_size() == 10
        assert p.find(3).bcid == 0        # boundary shifted
        assert p.local_offset(3, 0) == 3
        p.shrink(0, 2)
        assert p.total_size() == 8
        assert p.find(3).bcid == 1

    def test_out_of_range(self):
        p = UnbalancedBlockedPartition(2)
        p.set_domain(RangeDomain(0, 4))
        with pytest.raises(IndexError):
            p.find(4)

    def test_negative_shrink_rejected(self):
        p = UnbalancedBlockedPartition(2)
        p.set_domain(RangeDomain(0, 2))
        with pytest.raises(ValueError):
            p.shrink(0, 5)


class TestAssociativePartitions:
    def test_hash_partition_stable(self):
        p = HashPartition(4)
        p.set_domain(None)
        a = p.find("key").bcid
        assert a == p.find("key").bcid
        assert 0 <= a < 4

    def test_range_partition(self):
        p = RangePartition([10, 20, 30])
        p.set_domain(None)
        assert p.size() == 4
        assert p.find(5).bcid == 0
        assert p.find(10).bcid == 1
        assert p.find(25).bcid == 2
        assert p.find(99).bcid == 3

    def test_list_partition_reads_gid(self):
        p = ListPartition(4)
        p.set_domain(None)
        assert p.find((2, 77)).bcid == 2


class TestDirectoryPartition:
    def test_register_lookup(self):
        p = DirectoryPartition(4)
        p.set_domain(None)
        p.register_gid(42, 3)
        assert p.lookup(42) == 3
        assert p.find(42).bcid == 3
        p.unregister_gid(42)
        assert p.lookup(42) is None
        with pytest.raises(KeyError):
            p.find(42)

    def test_home_is_stable(self):
        p = DirectoryPartition(4)
        assert p.home_bcid(7) == p.home_bcid(7)

    def test_home_spreads_consecutive_ids(self):
        p = DirectoryPartition(4)
        homes = {p.home_bcid(v) for v in range(64)}
        assert len(homes) == 4  # the mixed hash hits every sub-domain


class TestStableHash:
    def test_deterministic_across_types(self):
        assert stable_hash(42) == stable_hash(42)
        assert stable_hash("abc") == stable_hash("abc")
        assert stable_hash((1, "a")) == stable_hash((1, "a"))
        assert stable_hash(3.5) == stable_hash(3.5)

    def test_low_bits_mixed(self):
        # consecutive ints must not all share low bits (regression test for
        # the directory-home == owner bug)
        mods = {stable_hash(i) % 4 for i in range(32)}
        assert len(mods) == 4


class TestMappers:
    def test_cyclic(self):
        m = CyclicMapper()
        m.init(6, (0, 1, 2))
        assert [m.map(b) for b in range(6)] == [0, 1, 2, 0, 1, 2]
        assert m.get_local_cids(1) == [1, 4]
        assert m.is_local(4, 1)

    def test_blocked(self):
        m = BlockedMapper()
        m.init(6, (0, 1, 2))
        assert [m.map(b) for b in range(6)] == [0, 0, 1, 1, 2, 2]
        assert m.get_local_cids(2) == [4, 5]

    def test_blocked_uneven(self):
        m = BlockedMapper()
        m.init(5, (0, 1))
        assert [m.map(b) for b in range(5)] == [0, 0, 0, 1, 1]

    def test_general(self):
        m = GeneralMapper([2, 0, 2, 1])
        m.init(4, (0, 1, 2))
        assert m.map(0) == 2 and m.map(3) == 1
        assert m.get_local_cids(2) == [0, 2]

    def test_general_validates(self):
        with pytest.raises(ValueError):
            GeneralMapper([0, 5]).init(2, (0, 1))
        with pytest.raises(ValueError):
            GeneralMapper([0]).init(2, (0, 1))

    def test_cyclic_nonmember(self):
        m = CyclicMapper()
        m.init(4, (1, 3))
        assert m.get_local_cids(0) == []
