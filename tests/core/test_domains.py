"""Domain tests (Ch. IV.B / Tables V-VI)."""

import pytest

from repro.core.domains import (
    INVALID_GID,
    CartesianDomain,
    EnumeratedDomain,
    FilteredDomain,
    OpenDomain,
    Range2DDomain,
    RangeDomain,
    UniverseDomain,
    domain_difference,
    domain_intersection,
    domain_union,
    linearization,
)


class TestRangeDomain:
    def test_basics(self):
        d = RangeDomain(3, 10)
        assert d.size() == 7
        assert d.get_first_gid() == 3
        assert d.get_last_gid() == 10  # one past the end, not a member
        assert 3 in d and 9 in d and 10 not in d and 2 not in d

    def test_iteration_is_linearization(self):
        d = RangeDomain(0, 5)
        assert linearization(d) == [0, 1, 2, 3, 4]

    def test_next_prev_advance_offset(self):
        d = RangeDomain(5, 12)
        assert d.get_next_gid(5) == 6
        assert d.get_prev_gid(6) == 5
        assert d.advance(5, 4) == 9
        assert d.offset(9) == 4
        assert d.gid_at(4) == 9

    def test_empty(self):
        d = RangeDomain(4, 4)
        assert d.size() == 0
        assert list(d) == []

    def test_negative_range_rejected(self):
        with pytest.raises(ValueError):
            RangeDomain(5, 4)

    def test_split_at(self):
        a, b = RangeDomain(0, 10).split_at(4)
        assert (a.lo, a.hi, b.lo, b.hi) == (0, 4, 4, 10)

    def test_compare(self):
        d = RangeDomain(0, 3)
        assert d.compare_less_gids(0, 2)
        assert not d.compare_less_gids(2, 0)

    def test_non_int_not_contained(self):
        assert "x" not in RangeDomain(0, 3)


class TestEnumeratedDomain:
    def test_order_is_enumeration_order(self):
        d = EnumeratedDomain(["red", "blue", "black"])
        assert list(d) == ["red", "blue", "black"]
        assert d.compare_less_gids("red", "black")
        assert d.offset("blue") == 1
        assert d.gid_at(2) == "black"

    def test_last_is_sentinel(self):
        d = EnumeratedDomain([1, 3, 2])
        last = d.get_last_gid()
        assert last is INVALID_GID
        assert d.get_next_gid(2) is last
        assert d.get_prev_gid(last) == 2
        assert d.compare_less_gids(3, last)
        assert not d.compare_less_gids(last, 3)

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError):
            EnumeratedDomain([1, 1])

    def test_unhashable_probe(self):
        assert [1] not in EnumeratedDomain([1, 2])

    def test_advance(self):
        d = EnumeratedDomain([5, 7, 9])
        assert d.advance(5, 2) == 9


class TestRange2DDomain:
    def test_row_major(self):
        d = Range2DDomain((0, 0), (2, 3), order="row")
        assert d.size() == 6
        assert list(d) == [(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2)]
        assert d.offset((1, 1)) == 4
        assert d.gid_at(4) == (1, 1)

    def test_column_major(self):
        d = Range2DDomain((0, 0), (2, 3), order="column")
        assert list(d) == [(0, 0), (1, 0), (0, 1), (1, 1), (0, 2), (1, 2)]
        assert d.compare_less_gids((1, 0), (0, 1))

    def test_contains(self):
        d = Range2DDomain((1, 1), (3, 3))
        assert (2, 2) in d and (0, 0) not in d and (3, 1) not in d
        assert "nope" not in d

    def test_next_wraps_rows(self):
        d = Range2DDomain((0, 0), (2, 2))
        assert d.get_next_gid((0, 1)) == (1, 0)
        assert d.get_next_gid((1, 1)) == d.get_last_gid()
        assert d.get_prev_gid(d.get_last_gid()) == (1, 1)

    def test_bad_order(self):
        with pytest.raises(ValueError):
            Range2DDomain((0, 0), (1, 1), order="diag")


class TestOpenAndUniverse:
    def test_open_domain_bounds(self):
        d = OpenDomain("a", "c")
        assert "a" in d and "b" in d and "ba" in d
        assert "c" not in d and "d" not in d
        assert not d.is_finite

    def test_open_domain_unbounded(self):
        d = OpenDomain(None, None)
        assert "anything" in d and 42 in d

    def test_open_domain_type_mismatch(self):
        assert 3 not in OpenDomain("a", "c")

    def test_universe(self):
        u = UniverseDomain()
        assert 1 in u and "x" in u and (1, 2) in u
        assert not u.is_finite

    def test_universe_with_predicate(self):
        u = UniverseDomain(lambda g: g % 2 == 0)
        assert 4 in u and 3 not in u


class TestCartesianDomain:
    def test_lexicographic(self):
        d = CartesianDomain([RangeDomain(0, 2), RangeDomain(0, 3)])
        assert d.size() == 6
        assert list(d)[:4] == [(0, 0), (0, 1), (0, 2), (1, 0)]
        assert d.offset((1, 2)) == 5
        assert d.gid_at(5) == (1, 2)
        assert d.compare_less_gids((0, 2), (1, 0))

    def test_contains(self):
        d = CartesianDomain([RangeDomain(0, 2), RangeDomain(0, 2)])
        assert (1, 1) in d and (2, 0) not in d and 7 not in d

    def test_mixed_factors(self):
        d = CartesianDomain([EnumeratedDomain(["a", "b"]), RangeDomain(0, 2)])
        assert list(d) == [("a", 0), ("a", 1), ("b", 0), ("b", 1)]


class TestFilteredDomain:
    def test_every_second(self):
        d = FilteredDomain(RangeDomain(0, 10), lambda g: g % 2 == 0)
        assert list(d) == [0, 2, 4, 6, 8]
        assert d.size() == 5
        assert 4 in d and 3 not in d
        assert d.get_next_gid(4) == 6
        assert d.offset(6) == 3


class TestSetOperations:
    def test_union_ranges(self):
        u = domain_union(RangeDomain(0, 5), RangeDomain(3, 8))
        assert isinstance(u, RangeDomain)
        assert (u.lo, u.hi) == (0, 8)

    def test_union_disjoint(self):
        u = domain_union(RangeDomain(0, 2), RangeDomain(5, 7))
        assert list(u) == [0, 1, 5, 6]

    def test_intersection(self):
        i = domain_intersection(RangeDomain(0, 5), RangeDomain(3, 9))
        assert list(i) == [3, 4]

    def test_intersection_empty(self):
        i = domain_intersection(RangeDomain(0, 2), RangeDomain(5, 7))
        assert i.size() == 0

    def test_difference(self):
        d = domain_difference(RangeDomain(0, 5), RangeDomain(2, 4))
        assert list(d) == [0, 1, 4]

    def test_enumerated_ops(self):
        a = EnumeratedDomain([1, 2, 3])
        b = EnumeratedDomain([3, 4])
        assert list(domain_intersection(a, b)) == [3]
        assert list(domain_difference(a, b)) == [1, 2]
