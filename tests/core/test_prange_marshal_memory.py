"""Tests for pRange/executor, marshaling and the memory/harness helpers."""


from repro.algorithms.prange import Executor, PRange, Task, run_map
from repro.containers.parray import PArray
from repro.core.marshal import Typer, marshal_size
from repro.core.memory import theoretical_parray_memory, theoretical_plist_memory
from repro.evaluation.harness import ExperimentResult, method_kernel, run_spmd_timed
from repro.views import Array1DView
from tests.conftest import run


class TestPRange:
    def test_map_over_creates_task_per_chunk(self):
        def prog(ctx):
            pa = PArray(ctx, 12, dtype=int)
            view = Array1DView(pa)
            pr = PRange.map_over(view, lambda ch: ch.size())
            results = Executor().run(pr)
            return sum(results)
        out = run(prog, nlocs=3)
        assert sum(out) == 12

    def test_dependencies_respected(self):
        def prog(ctx):
            order = []
            pr = PRange([])
            t1 = pr.add_task(lambda _c: order.append("first"))
            t2 = pr.add_task(lambda _c: order.append("second"), deps=(t1,))
            t3 = pr.add_task(lambda _c: order.append("third"), deps=(t2,))
            Executor(fence=False).run(pr)
            return order
        assert run(prog, nlocs=1) == [["first", "second", "third"]]

    def test_cycle_detected(self):
        def prog(ctx):
            pr = PRange([])
            t1 = Task(lambda _c: None, None)
            t2 = Task(lambda _c: None, None, deps=(t1,))
            t1.deps = (t2,)
            pr.tasks = [t1, t2]
            try:
                Executor(fence=False).run(pr)
                return False
            except RuntimeError:
                return True
        assert all(run(prog, nlocs=1))

    def test_run_map_with_fence(self):
        def prog(ctx):
            pa = PArray(ctx, 8, dtype=int)
            view = Array1DView(pa)
            # tasks write remotely; run_map's closing fence completes them
            def action(chunk):
                for gid in chunk.gids():
                    pa.set_element((gid + 1) % 8, 1)
            run_map(view, action)
            return pa.to_list()
        assert run(prog, nlocs=2)[0] == [1] * 8

    def test_task_result_stored(self):
        t = Task(lambda c: c * 2, 21)
        assert t.run() == 42 and t.done and t.result == 42


class TestMarshal:
    def test_typer_accumulates(self):
        t = Typer()
        t.member(1).member("abcd").member(2.0, count=3)
        assert t.size == 8 + (16 + 4) + 24

    def test_marshal_size_respects_define_type(self):
        class WithDT:
            def define_type(self, typer):
                typer.member(0, count=10)

        assert marshal_size(WithDT()) == 80

    def test_marshal_size_fallback(self):
        assert marshal_size([1, 2, 3]) > 0
        assert marshal_size("hello") == 21

    def test_estimate_size_families(self):
        import numpy as np

        from repro.runtime.comm import estimate_size

        assert estimate_size(None) == 8
        assert estimate_size(7) == 8
        assert estimate_size("ab") == 18
        assert estimate_size((1, 2)) == 16 + 16
        assert estimate_size({}) == 16
        assert estimate_size(np.zeros(10)) == 64 + 80
        # long lists are sampled, not walked
        assert estimate_size(list(range(10_000))) >= 8 * 10_000

    def test_estimate_size_vt_hook(self):
        from repro.runtime.comm import estimate_size

        class Sized:
            def _vt_size_(self):
                return 123

        assert estimate_size(Sized()) == 123


class TestTheoreticalMemory:
    def test_parray_model_fields(self):
        m = theoretical_parray_memory(1000, 4)
        assert m["data"] == 8000
        assert m["total"] == m["data"] + m["metadata"]
        assert m["per_location_metadata"] == m["metadata"] / 4

    def test_parray_metadata_independent_of_n(self):
        a = theoretical_parray_memory(1_000, 4)
        b = theoretical_parray_memory(1_000_000, 4)
        assert a["metadata"] == b["metadata"]

    def test_plist_metadata_linear_in_n(self):
        a = theoretical_plist_memory(1_000, 4)
        b = theoretical_plist_memory(2_000, 4)
        assert b["metadata"] - a["metadata"] == 32 * 1000


class TestHarness:
    def test_experiment_result_columns(self):
        res = ExperimentResult("t", ["a", "b"])
        res.add(1, 2.5)
        res.add(3, 4.5)
        assert res.column("b") == [2.5, 4.5]
        text = res.format_table()
        assert "== t ==" in text and "4.50" in text

    def test_method_kernel_counts_ops(self):
        calls = []

        def op(container, ctx, i):
            calls.append((ctx.id, i))
            container.set_element(i % container.size(), i)

        prog = method_kernel(lambda ctx: PArray(ctx, 8, dtype=int), op, 5)
        results, clock, stats = run_spmd_timed(prog, 2, "smp")
        assert len(calls) == 10
        assert all(t >= 0 for t in results)
        assert clock > 0

    def test_run_spmd_timed_stats(self):
        def prog(ctx):
            ctx.rmi_fence()
            return 1
        results, clock, stats = run_spmd_timed(prog, 4, "cray4")
        assert results == [1, 1, 1, 1]
        assert stats.fences == 4
