"""Property-based tests (hypothesis) on core data structures and invariants."""

import operator

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.domains import EnumeratedDomain, Range2DDomain, RangeDomain
from repro.core.mappers import BlockedMapper, CyclicMapper
from repro.core.partitions import (
    BalancedPartition,
    BlockCyclicPartition,
    BlockedPartition,
    ExplicitPartition,
    balanced_sizes,
    stable_hash,
)

# ---------------------------------------------------------------------------
# domains
# ---------------------------------------------------------------------------


@given(lo=st.integers(-1000, 1000), size=st.integers(0, 500))
def test_range_domain_offset_gid_roundtrip(lo, size):
    d = RangeDomain(lo, lo + size)
    for off in range(0, size, max(1, size // 7)):
        assert d.offset(d.gid_at(off)) == off


@given(st.lists(st.integers(), unique=True, min_size=1, max_size=60))
def test_enumerated_domain_linearization_unique(gids):
    d = EnumeratedDomain(gids)
    assert list(d) == gids
    # the order relation is total and matches the enumeration
    for i in range(len(gids) - 1):
        assert d.compare_less_gids(gids[i], gids[i + 1])
        assert not d.compare_less_gids(gids[i + 1], gids[i])


@given(rows=st.integers(1, 20), cols=st.integers(1, 20),
       order=st.sampled_from(["row", "column"]))
def test_range2d_enumeration_is_bijection(rows, cols, order):
    d = Range2DDomain((0, 0), (rows, cols), order=order)
    seen = list(d)
    assert len(seen) == rows * cols == len(set(seen))
    for off, gid in enumerate(seen):
        assert d.offset(gid) == off
        assert d.gid_at(off) == gid


# ---------------------------------------------------------------------------
# partitions (Def. 9: disjoint cover)
# ---------------------------------------------------------------------------

_PARTITIONS = st.one_of(
    st.integers(1, 9).map(BalancedPartition),
    st.integers(1, 9).map(BlockedPartition),
    st.tuples(st.integers(1, 5), st.integers(1, 4)).map(
        lambda t: BlockCyclicPartition(*t)),
)


@given(part=_PARTITIONS, n=st.integers(0, 120))
def test_partition_disjoint_cover(part, n):
    if n == 0 and not isinstance(part, BalancedPartition):
        n = 1
    domain = RangeDomain(0, n)
    part.set_domain(domain)
    seen = {}
    for bcid in range(part.size()):
        for gid in part.get_sub_domain(bcid):
            assert gid not in seen
            seen[gid] = bcid
    assert set(seen) == set(domain)
    for gid in domain:
        assert part.find(gid).bcid == seen[gid]


@given(sizes=st.lists(st.integers(0, 20), min_size=1, max_size=8))
def test_explicit_partition_matches_sizes(sizes):
    n = sum(sizes)
    p = ExplicitPartition(sizes)
    p.set_domain(RangeDomain(0, n))
    assert p.get_sub_domain_sizes() == sizes
    for gid in range(n):
        bcid = p.find(gid).bcid
        assert gid in set(p.get_sub_domain(bcid))


@given(n=st.integers(0, 10_000), parts=st.integers(1, 64))
def test_balanced_sizes_invariants(n, parts):
    sizes = balanced_sizes(n, parts)
    assert sum(sizes) == n
    assert max(sizes) - min(sizes) <= 1
    assert sizes == sorted(sizes, reverse=True)


@given(m=st.integers(1, 40), locs=st.lists(st.integers(0, 63), unique=True,
                                           min_size=1, max_size=8))
def test_mappers_cover_all_bcids(m, locs):
    for mapper in (CyclicMapper(), BlockedMapper()):
        mapper.init(m, sorted(locs))
        owned = []
        for lid in sorted(locs):
            owned.extend(mapper.get_local_cids(lid))
        assert sorted(owned) == list(range(m))
        for b in range(m):
            assert mapper.map(b) in locs


@given(st.one_of(st.integers(), st.text(max_size=20),
                 st.tuples(st.integers(), st.text(max_size=5))))
def test_stable_hash_deterministic_nonnegative(x):
    assert stable_hash(x) == stable_hash(x)
    assert stable_hash(x) >= 0


# ---------------------------------------------------------------------------
# SPMD invariants (smaller example counts: each example is a full run)
# ---------------------------------------------------------------------------

from repro.algorithms.generic import p_accumulate, p_partial_sum  # noqa: E402
from repro.algorithms.sorting import p_is_sorted, p_sample_sort  # noqa: E402
from repro.containers.parray import PArray  # noqa: E402
from repro.containers.plist import PList  # noqa: E402
from repro.runtime import spmd_run  # noqa: E402
from repro.views import Array1DView  # noqa: E402


@settings(max_examples=12, deadline=None)
@given(data=st.lists(st.integers(-50, 50), min_size=1, max_size=40),
       nlocs=st.sampled_from([1, 2, 3, 4]))
def test_parray_matches_list_model(data, nlocs):
    def prog(ctx):
        pa = PArray(ctx, len(data), dtype=int)
        for i in range(ctx.id, len(data), ctx.nlocs):
            pa.set_element(i, data[i])
        ctx.rmi_fence()
        return pa.to_list()
    out = spmd_run(prog, nlocs=nlocs)
    assert all(o == data for o in out)


@settings(max_examples=10, deadline=None)
@given(data=st.lists(st.integers(0, 100), min_size=1, max_size=40),
       nlocs=st.sampled_from([1, 2, 4]))
def test_sample_sort_matches_sorted(data, nlocs):
    def prog(ctx):
        pa = PArray(ctx, len(data), dtype=int)
        for i in range(ctx.id, len(data), ctx.nlocs):
            pa.set_element(i, data[i])
        ctx.rmi_fence()
        v = Array1DView(pa)
        p_sample_sort(v)
        return p_is_sorted(v), pa.to_list()
    out = spmd_run(prog, nlocs=nlocs)
    ok, result = out[0]
    assert ok and result == sorted(data)


@settings(max_examples=10, deadline=None)
@given(data=st.lists(st.integers(-20, 20), min_size=1, max_size=30),
       nlocs=st.sampled_from([1, 2, 4]))
def test_partial_sum_matches_itertools(data, nlocs):
    import itertools

    def prog(ctx):
        a = PArray(ctx, len(data), dtype=int)
        b = PArray(ctx, len(data), dtype=int)
        for i in range(ctx.id, len(data), ctx.nlocs):
            a.set_element(i, data[i])
        ctx.rmi_fence()
        p_partial_sum(Array1DView(a), Array1DView(b))
        return b.to_list()
    out = spmd_run(prog, nlocs=nlocs)
    assert out[0] == list(itertools.accumulate(data))


@settings(max_examples=10, deadline=None)
@given(ops=st.lists(
    st.tuples(st.sampled_from(["push_back", "push_front", "pop_back",
                               "pop_front"]),
              st.integers(0, 99)),
    max_size=25))
def test_plist_sequence_matches_deque_model(ops):
    from collections import deque

    model = deque()

    def prog(ctx):
        pl = PList(ctx, 0)
        if ctx.id == 0:
            for op, val in ops:
                if op == "push_back":
                    pl.push_back(val)
                elif op == "push_front":
                    pl.push_front(val)
                elif op == "pop_back":
                    try:
                        pl.pop_back()
                    except IndexError:
                        pass
                else:
                    try:
                        pl.pop_front()
                    except IndexError:
                        pass
        ctx.rmi_fence()
        return pl.to_list()

    for op, val in ops:
        if op == "push_back":
            model.append(val)
        elif op == "push_front":
            model.appendleft(val)
        elif op == "pop_back" and model:
            model.pop()
        elif op == "pop_front" and model:
            model.popleft()
    out = spmd_run(prog, nlocs=2)
    assert out[0] == list(model)


@settings(max_examples=8, deadline=None)
@given(data=st.lists(st.integers(-100, 100), min_size=1, max_size=30))
def test_accumulate_matches_sum_any_distribution(data):
    from repro.core import BlockCyclicPartition

    def prog(ctx):
        pa = PArray(ctx, len(data), dtype=int,
                    partition=BlockCyclicPartition(ctx.nlocs, 2))
        for i in range(ctx.id, len(data), ctx.nlocs):
            pa.set_element(i, data[i])
        ctx.rmi_fence()
        return p_accumulate(Array1DView(pa), 0, operator.add)
    assert spmd_run(prog, nlocs=3)[0] == sum(data)
