"""Hypothesis properties over containers: associative model conformance,
graph invariants, redistribution preservation."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.containers.associative import PHashMap, PMultiSet
from repro.containers.parray import PArray
from repro.containers.pgraph import UNDIRECTED, PGraph
from repro.core import BlockCyclicPartition, BlockedPartition, ExplicitPartition
from repro.core.partitions import balanced_sizes
from repro.runtime import spmd_run

_KEYS = st.one_of(st.integers(-50, 50), st.text(max_size=6))


@settings(max_examples=12, deadline=None)
@given(items=st.lists(st.tuples(_KEYS, st.integers(-9, 9)), max_size=30),
       nlocs=st.sampled_from([1, 2, 4]))
def test_phashmap_matches_dict_model(items, nlocs):
    """Insert-then-overwrite streams give dict semantics after a fence."""
    def prog(ctx):
        hm = PHashMap(ctx)
        if ctx.id == 0:
            for k, v in items:
                hm.set_element(k, v)
        ctx.rmi_fence()
        return hm.to_dict()
    expected = {}
    for k, v in items:
        expected[k] = v
    out = spmd_run(prog, nlocs=nlocs)
    assert all(o == expected for o in out)


@settings(max_examples=10, deadline=None)
@given(keys=st.lists(st.integers(0, 20), max_size=30))
def test_pmultiset_counts_match_counter(keys):
    from collections import Counter

    def prog(ctx):
        ms = PMultiSet(ctx)
        if ctx.id == 0:
            for k in keys:
                ms.insert(k)
        ctx.rmi_fence()
        return {k: ms.count(k) for k in set(keys)}
    out = spmd_run(prog, nlocs=2)
    assert out[0] == dict(Counter(keys))


@settings(max_examples=10, deadline=None)
@given(edges=st.lists(
    st.tuples(st.integers(0, 11), st.integers(0, 11)), max_size=40),
    dynamic=st.booleans())
def test_pgraph_edge_count_invariant(edges, dynamic):
    """Total edges equals the number of (deduplicated) insertions on a
    no-multi graph, regardless of partition type."""
    def prog(ctx):
        g = PGraph(ctx, 12, multi_edges=False, dynamic=dynamic,
                   default_property=0)
        if ctx.id == 0:
            for u, v in edges:
                g.add_edge_async(u, v)
        ctx.rmi_fence()
        return g.get_num_edges()
    out = spmd_run(prog, nlocs=3)
    assert out[0] == len(set(edges))


@settings(max_examples=10, deadline=None)
@given(edges=st.lists(
    st.tuples(st.integers(0, 9), st.integers(0, 9)).filter(lambda e: e[0] != e[1]),
    max_size=30))
def test_undirected_symmetry_invariant(edges):
    def prog(ctx):
        g = PGraph(ctx, 10, directed=UNDIRECTED, multi_edges=False,
                   default_property=0)
        if ctx.id == 0:
            for u, v in edges:
                g.add_edge_async(u, v)
        ctx.rmi_fence()
        ok = True
        for bc in g.local_bcontainers():
            for vd in bc.vertices():
                for t in bc.adjacents(vd):
                    if not g.has_edge(t, vd):
                        ok = False
        return ctx.allreduce_rmi(ok, lambda a, b: a and b)
    assert all(spmd_run(prog, nlocs=2))


_NEW_PARTS = st.one_of(
    st.integers(1, 6).map(BlockedPartition),
    st.tuples(st.integers(1, 4), st.integers(1, 3)).map(
        lambda t: BlockCyclicPartition(*t)),
)


@settings(max_examples=10, deadline=None)
@given(data=st.lists(st.integers(-99, 99), min_size=1, max_size=24),
       part=_NEW_PARTS)
def test_redistribution_preserves_content(data, part):
    def prog(ctx):
        pa = PArray(ctx, len(data), dtype=int)
        for i in range(ctx.id, len(data), ctx.nlocs):
            pa.set_element(i, data[i])
        ctx.rmi_fence()
        pa.redistribute(part)
        after = pa.to_list()
        pa.rebalance()
        return after, pa.to_list()
    out = spmd_run(prog, nlocs=3)
    assert out[0][0] == data and out[0][1] == data


@settings(max_examples=10, deadline=None)
@given(n=st.integers(1, 60), nlocs=st.sampled_from([1, 2, 4, 8]))
def test_rebalance_invariant_sizes(n, nlocs):
    def prog(ctx):
        sizes = [n] + [0] * (ctx.nlocs - 1)
        pa = PArray(ctx, n, dtype=int, partition=ExplicitPartition(sizes))
        pa.rebalance()
        return sum(bc.size() for bc in pa.local_bcontainers())
    out = spmd_run(prog, nlocs=nlocs)
    assert sorted(out, reverse=True) == balanced_sizes(n, nlocs)
