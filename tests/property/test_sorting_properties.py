"""Property-based tests (hypothesis) for sample-sort splitter selection on
degenerate inputs: empty locations, non-power-of-two location counts, and
duplicate-heavy keys — in both the fenced and the data-flow (PARAGRAPH)
execution modes."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.prange import set_dataflow
from repro.algorithms.sorting import (
    _bucket_elements,
    _select_splitters,
    p_sample_sort,
)
from repro.containers.parray import PArray
from repro.runtime import spmd_run
from repro.views.array_views import Array1DView


def _run_sort(data, nlocs, dataflow):
    def prog(ctx):
        pa = PArray(ctx, len(data), dtype=int)
        for i in range(ctx.id, len(data), ctx.nlocs):
            pa.set_element(i, data[i])
        ctx.rmi_fence()
        p_sample_sort(Array1DView(pa))
        return pa.to_list()

    prev = set_dataflow(dataflow)
    try:
        return spmd_run(prog, nlocs=nlocs)[0]
    finally:
        set_dataflow(prev)


@settings(max_examples=12, deadline=None)
@given(data=st.lists(st.integers(0, 5), min_size=1, max_size=40),
       nlocs=st.sampled_from([2, 3, 5, 7]),
       dataflow=st.booleans())
def test_duplicate_heavy_matches_sorted(data, nlocs, dataflow):
    """Few distinct keys, odd/prime location counts."""
    assert _run_sort(data, nlocs, dataflow) == sorted(data)


@settings(max_examples=10, deadline=None)
@given(n=st.integers(1, 6), nlocs=st.sampled_from([4, 5, 8]),
       dataflow=st.booleans())
def test_more_locations_than_elements(n, nlocs, dataflow):
    """Most locations hold an empty slice of the view."""
    data = [(i * 37) % 11 for i in range(n)]
    assert _run_sort(data, nlocs, dataflow) == sorted(data)


@settings(max_examples=12, deadline=None)
@given(data=st.lists(st.integers(-50, 50), min_size=1, max_size=60),
       nlocs=st.sampled_from([3, 6]), dataflow=st.booleans())
def test_general_matches_sorted_non_power_of_two(data, nlocs, dataflow):
    assert _run_sort(data, nlocs, dataflow) == sorted(data)


# ---------------------------------------------------------------------------
# phase-kernel properties (no runtime needed)
# ---------------------------------------------------------------------------


@given(samples=st.lists(
    st.lists(st.integers(0, 9), max_size=8), min_size=1, max_size=8),
    P=st.integers(1, 8))
def test_select_splitters_sorted_and_sized(samples, P):
    sp = _select_splitters([sorted(s) for s in samples], P)
    assert sp == sorted(sp)
    if any(samples) and P > 1:
        assert len(sp) == P - 1
    else:
        assert sp == []


@given(data=st.lists(st.integers(0, 6), max_size=80), P=st.integers(1, 8))
def test_bucket_concatenation_is_sorted(data, P):
    local = sorted(data)
    sp = _select_splitters([local[:: max(1, len(local) // 4)][:4]], P)
    buckets = _bucket_elements(local, sp, P)
    flat = [v for b in buckets for v in b]
    assert sorted(flat) == local
    assert flat == sorted(flat)  # bucket order preserves global order
    assert all(b == sorted(b) for b in buckets)


@given(P=st.integers(2, 8), n=st.integers(0, 64))
def test_all_equal_keys_spread(P, n):
    """All-equal input must not collapse into one bucket (the degeneracy
    this PR fixes): the round-robin spread lands within one element of
    even."""
    local = [7] * n
    sp = [7] * (P - 1)  # what duplicate-heavy sampling produces
    buckets = _bucket_elements(local, sp, P)
    sizes = [len(b) for b in buckets]
    assert sum(sizes) == n
    if n >= P:
        assert max(sizes) - min(sizes) <= 1
