"""Hypothesis properties for the migration subsystem: random interleavings
of inserts/erases/migrations preserve sequential-oracle equivalence."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.containers.associative import PHashMap
from repro.containers.plist import PList
from repro.runtime import spmd_run

_NLOCS = 4

_KEYS = st.integers(0, 25)

#: one op: ("insert", k, v) / ("erase", k) / ("migrate", bcid, dest) /
#: ("rebalance",)
_MAP_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), _KEYS, st.integers(-9, 9)),
        st.tuples(st.just("erase"), _KEYS),
        st.tuples(st.just("migrate"), st.integers(0, 2 * _NLOCS - 1),
                  st.integers(0, _NLOCS - 1)),
        st.tuples(st.just("rebalance")),
    ),
    max_size=30)


@settings(max_examples=15, deadline=None)
@given(ops=_MAP_OPS)
def test_phashmap_interleaved_migrations_match_dict(ops):
    """Inserts/erases interleaved with bContainer migrations and
    rebalances give exactly the sequential dict semantics."""
    def prog(ctx):
        hm = PHashMap(ctx, num_bcontainers=2 * ctx.nlocs)
        for op in ops:
            if op[0] == "insert":
                if ctx.id == 0:
                    hm.set_element(op[1], op[2])
            elif op[0] == "erase":
                if ctx.id == 0:
                    hm.erase_async(op[1])
            elif op[0] == "migrate":
                # collective — identical on every location.  The fence
                # quiesces in-flight asyncs first: ops crossing a
                # migration are redelivered to the new owner, but their
                # order against *post-migration* ops on the same key is
                # relaxed (async ordering is per (source, destination)
                # channel, and migration changes the destination).
                ctx.rmi_fence()
                hm.migrate({op[1]: hm.group.members[op[2]]})
            else:
                ctx.rmi_fence()
                hm.rebalance()
        ctx.rmi_fence()
        return hm.to_dict()

    oracle: dict = {}
    for op in ops:
        if op[0] == "insert":
            oracle[op[1]] = op[2]
        elif op[0] == "erase":
            oracle.pop(op[1], None)
    out = spmd_run(prog, nlocs=_NLOCS)
    assert all(o == oracle for o in out)


_LIST_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("push_back"), st.integers(-99, 99)),
        st.tuples(st.just("push_front"), st.integers(-99, 99)),
        st.tuples(st.just("pop_back")),
        st.tuples(st.just("pop_front")),
        st.tuples(st.just("migrate"), st.integers(0, _NLOCS - 1),
                  st.integers(0, _NLOCS - 1)),
        st.tuples(st.just("rebalance")),
    ),
    max_size=25)


@settings(max_examples=15, deadline=None)
@given(size=st.integers(0, 8), ops=_LIST_OPS)
def test_plist_interleaved_migrations_match_list(size, ops):
    """End pushes/pops interleaved with segment migrations preserve the
    global sequence a plain Python list predicts."""
    def prog(ctx):
        pl = PList(ctx, size, value=7)
        for op in ops:
            if op[0] == "push_back":
                if ctx.id == 0:
                    pl.push_back(op[1])
            elif op[0] == "push_front":
                if ctx.id == 0:
                    pl.push_front(op[1])
            elif op[0] == "pop_back":
                ctx.rmi_fence()  # pops race pushes: order the stream
                if pl.update_size() and ctx.id == 0:
                    pl.pop_back()
                ctx.rmi_fence()
            elif op[0] == "pop_front":
                ctx.rmi_fence()
                if pl.update_size() and ctx.id == 0:
                    pl.pop_front()
                ctx.rmi_fence()
            elif op[0] == "migrate":
                ctx.rmi_fence()  # see the map test: migration is a sync point
                pl.migrate({op[1]: pl.group.members[op[2]]})
            else:
                ctx.rmi_fence()
                pl.rebalance()
        ctx.rmi_fence()
        return pl.to_list()

    oracle = [7] * size
    for op in ops:
        if op[0] == "push_back":
            oracle.append(op[1])
        elif op[0] == "push_front":
            oracle.insert(0, op[1])
        elif op[0] == "pop_back":
            if oracle:
                oracle.pop()
        elif op[0] == "pop_front":
            if oracle:
                oracle.pop(0)
    out = spmd_run(prog, nlocs=_NLOCS)
    assert all(o == oracle for o in out)
