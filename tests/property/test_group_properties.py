"""Property-based tests (hypothesis) for the location-group hierarchy:
subgroup/split algebra, group-relative rank arithmetic, and the
world <-> group identifier round-trips the nested-section machinery
relies on."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime import LocationGroup
from tests.conftest import run


def _members(draw_world, draw_subset):
    world = LocationGroup(range(draw_world))
    subset = sorted(set(lid % draw_world for lid in draw_subset)) or [0]
    return world, subset


# ---------------------------------------------------------------------------
# pure algebra: subgroup / rank arithmetic
# ---------------------------------------------------------------------------


@given(nlocs=st.integers(1, 32),
       picks=st.lists(st.integers(0, 63), min_size=1, max_size=16))
def test_subgroup_rank_lid_roundtrip(nlocs, picks):
    world, subset = _members(nlocs, picks)
    sub = world.subgroup(subset)
    assert sub.parent is world
    assert len(sub) == len(subset)
    for rank, lid in enumerate(subset):
        assert sub.rank_of(lid) == rank
        assert sub.lid_of(rank) == lid
        assert lid in sub and lid in world


@given(nlocs=st.integers(2, 32),
       picks=st.lists(st.integers(0, 63), min_size=2, max_size=16))
def test_subgroup_noncontiguous_order_preserved(nlocs, picks):
    """An ordered subgroup keeps exactly the member order it was given —
    ranks are positional, not sorted world ids."""
    world, subset = _members(nlocs, picks)
    scrambled = list(reversed(subset))
    sub = world.subgroup(scrambled)
    assert sub.members == tuple(scrambled)
    for rank, lid in enumerate(scrambled):
        assert sub.rank_of(lid) == rank


@given(nlocs=st.integers(2, 24),
       picks=st.lists(st.integers(0, 63), min_size=2, max_size=16),
       inner_picks=st.lists(st.integers(0, 63), min_size=1, max_size=8))
def test_nested_subgroups_compose(nlocs, picks, inner_picks):
    """subgroup of a subgroup: world lids survive both hops and the parent
    chain records the derivation."""
    world, subset = _members(nlocs, picks)
    sub = world.subgroup(subset)
    inner_members = sorted(set(subset[i % len(subset)] for i in inner_picks))
    inner = sub.subgroup(inner_members)
    assert inner.parent is sub and sub.parent is world
    for rank, lid in enumerate(inner_members):
        assert inner.lid_of(rank) == lid
        assert inner.rank_of(lid) == rank
        # the lid is the *world* id at every level of the chain
        assert sub.lid_of(sub.rank_of(lid)) == lid


@given(nlocs=st.integers(1, 32),
       picks=st.lists(st.integers(0, 63), min_size=1, max_size=16))
def test_subgroup_rejects_non_members(nlocs, picks):
    world, subset = _members(nlocs, picks)
    with pytest.raises(ValueError):
        world.subgroup(subset + [nlocs])
    sub = world.subgroup(subset)
    with pytest.raises(ValueError):
        sub.rank_of(nlocs + 1)
    with pytest.raises(ValueError):
        sub.lid_of(len(subset))


def test_ordered_group_rejects_duplicates():
    with pytest.raises(ValueError):
        LocationGroup([1, 2, 1], ordered=True)


# ---------------------------------------------------------------------------
# collective split (needs a runtime: colors are exchanged via allgather)
# ---------------------------------------------------------------------------


@settings(max_examples=12, deadline=None)
@given(nlocs=st.integers(2, 8), data=st.data())
def test_split_partitions_by_color(nlocs, data):
    colors = data.draw(st.lists(
        st.one_of(st.none(), st.integers(0, 2)),
        min_size=nlocs, max_size=nlocs))
    keys = data.draw(st.lists(st.integers(-3, 3),
                              min_size=nlocs, max_size=nlocs))

    def prog(ctx):
        g = ctx.runtime.world.split(ctx, colors[ctx.id], key=keys[ctx.id])
        return None if g is None else (g.members, g.rank_of(ctx.id))

    out = run(prog, nlocs=nlocs)
    for lid, res in enumerate(out):
        if colors[lid] is None:
            assert res is None
            continue
        members, rank = res
        expected = tuple(lid2 for _, lid2 in sorted(
            (keys[l2], l2) for l2 in range(nlocs)
            if colors[l2] == colors[lid]))
        assert members == expected
        assert members[rank] == lid


@settings(max_examples=8, deadline=None)
@given(nlocs=st.integers(4, 8), data=st.data())
def test_nested_splits_compose(nlocs, data):
    """Splitting a split subgroup yields groups whose members are still
    world lids and subsets of the first-level group."""
    c1 = data.draw(st.lists(st.integers(0, 1),
                            min_size=nlocs, max_size=nlocs))
    c2 = data.draw(st.lists(st.integers(0, 1),
                            min_size=nlocs, max_size=nlocs))

    def prog(ctx):
        g1 = ctx.runtime.world.split(ctx, c1[ctx.id])
        g2 = g1.split(ctx, c2[ctx.id])
        return g1.members, g2.members, g2.rank_of(ctx.id)

    out = run(prog, nlocs=nlocs)
    for lid, (m1, m2, rank) in enumerate(out):
        assert set(m2) <= set(m1)
        assert m1 == tuple(l2 for l2 in range(nlocs) if c1[l2] == c1[lid])
        assert m2 == tuple(l2 for l2 in range(nlocs)
                           if c1[l2] == c1[lid] and c2[l2] == c2[lid])
        assert m2[rank] == lid


@settings(max_examples=10, deadline=None)
@given(nlocs=st.integers(2, 8), data=st.data())
def test_split_groups_carry_collectives(nlocs, data):
    """A split subgroup is immediately usable for collectives: a per-group
    allreduce must sum exactly the group's members, never the world."""
    colors = data.draw(st.lists(st.integers(0, 2),
                                min_size=nlocs, max_size=nlocs))

    def prog(ctx):
        g = ctx.runtime.world.split(ctx, colors[ctx.id])
        return ctx.allreduce_rmi(ctx.id, group=g)

    out = run(prog, nlocs=nlocs)
    for lid, total in enumerate(out):
        assert total == sum(l2 for l2 in range(nlocs)
                            if colors[l2] == colors[lid])
