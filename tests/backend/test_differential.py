"""Differential sim-vs-real equivalence suite (ROADMAP item 1 acceptance).

Each test runs one SPMD program twice — under the deterministic simulated
oracle and under the real multiprocessing backend — and asserts the
per-location results are byte-identical, across worker counts P=1,2,4.

Programs are written the way any correct distributed program must be:
conflicting writes are ordered (disjoint writers, commutative accumulates,
min-fixpoints), because under real concurrency cross-source interleaving is
genuinely nondeterministic.  Given that discipline, the two backends must
agree bit-for-bit on all six container families and every algorithm
driver.
"""

import numpy as np
import pytest

from repro.algorithms import (
    map_reduce,
    p_adjacent_difference,
    p_partial_sum,
    p_sample_sort,
    p_sort_scan_pipeline,
    sssp,
    word_count,
)
from repro.containers import (
    PArray,
    PGraph,
    PHashMap,
    PList,
    PMatrix,
    PSet,
    PVector,
)
from repro.views import Array1DView

SWEEP = pytest.mark.parametrize("nlocs", [1, 2, 4])


# ---------------------------------------------------------------------------
# The six container families
# ---------------------------------------------------------------------------


def _parray_prog(ctx):
    n = 48
    pa = PArray(ctx, n, value=0)
    for i in range(n):
        if pa.is_local(i):
            pa.set_element(i, i * i - 3 * i)
    ctx.rmi_fence()
    # cross-location reads exercise the request/reply path
    probes = [pa.get_element((ctx.id * 11 + k) % n) for k in range(6)]
    ctx.rmi_fence()
    out = pa.to_list()
    ctx.rmi_fence()
    return probes, out


def _pvector_prog(ctx):
    n = 24
    pv = PVector(ctx, n, value=1)
    for i in range(n):
        if pv.is_local(i):
            pv.set_element(i, (i * 7) % 13)
    ctx.rmi_fence()
    out = pv.to_list()
    total = ctx.allreduce_rmi(sum(out))
    ctx.rmi_fence()
    return out, total


def _plist_prog(ctx):
    pl = PList(ctx)
    # per-location push_anywhere_range targets this location's own segment:
    # deterministic placement on both backends
    pl.push_anywhere_range([ctx.id * 1000 + k for k in range(7)])
    ctx.rmi_fence()
    out = pl.to_list()
    ctx.rmi_fence()
    return sorted(out), len(out)


def _assoc_prog(ctx):
    pm = PHashMap(ctx)
    ps = PSet(ctx)
    # commutative accumulates + idempotent set inserts: order-free results
    for k in range(20):
        pm.accumulate(f"key{k % 6}", k + ctx.id)
        ps.insert((k * 5) % 9)
    ctx.rmi_fence()
    items = pm.sorted_items()
    members = ps.sorted_items()
    ctx.rmi_fence()
    return items, members


def _pgraph_prog(ctx):
    n = 10
    g = PGraph(ctx, n, default_property=0)
    if ctx.id == 0:  # single writer: identical edge set on both backends
        for u in range(n):
            g.add_edge_async(u, (u + 1) % n, float(u % 4 + 1))
            g.add_edge_async(u, (u + 3) % n, 2.0)
    ctx.rmi_fence()
    degs = [len(list(g.edges_of(v))) if g.is_local(v) else -1
            for v in range(n)]
    total_edges = ctx.allreduce_rmi(sum(d for d in degs if d >= 0))
    ctx.rmi_fence()
    return total_edges


def _pmatrix_prog(ctx):
    rows = cols = 6
    pm = PMatrix(ctx, rows, cols, value=0)
    for i in range(rows):
        for j in range(cols):
            if pm.is_local((i, j)):
                pm.set_element((i, j), i * cols + j)
    ctx.rmi_fence()
    local_sum = sum(pm.get_element((i, j)) for i in range(rows)
                    for j in range(cols) if pm.is_local((i, j)))
    total = ctx.allreduce_rmi(local_sum)
    trace = sum(pm.get_element((d, d)) for d in range(rows))
    ctx.rmi_fence()
    return total, trace


CONTAINER_PROGS = {
    "parray": _parray_prog,
    "pvector": _pvector_prog,
    "plist": _plist_prog,
    "associative": _assoc_prog,
    "pgraph": _pgraph_prog,
    "pmatrix": _pmatrix_prog,
}


@SWEEP
@pytest.mark.parametrize("family", sorted(CONTAINER_PROGS))
def test_container_family_identical(run_differential, family, nlocs):
    run_differential(CONTAINER_PROGS[family], nlocs)


# ---------------------------------------------------------------------------
# Algorithm drivers
# ---------------------------------------------------------------------------


def _sort_prog(ctx):
    n = 64
    pa = PArray(ctx, n, value=0)
    data = np.random.default_rng(11).integers(0, 500, n)
    for i in range(n):
        if pa.is_local(i):
            pa.set_element(i, int(data[i]))
    ctx.rmi_fence()
    p_sample_sort(Array1DView(pa))
    out = pa.to_list()
    ctx.rmi_fence()
    return out


def _scan_prog(ctx):
    n = 40
    src = PArray(ctx, n, value=0)
    dst = PArray(ctx, n, value=0)
    diff = PArray(ctx, n, value=0)
    for i in range(n):
        if src.is_local(i):
            src.set_element(i, (i * 3) % 11)
    ctx.rmi_fence()
    p_partial_sum(Array1DView(src), Array1DView(dst))
    p_adjacent_difference(Array1DView(dst), Array1DView(diff))
    out = dst.to_list(), diff.to_list()
    ctx.rmi_fence()
    return out


def _sssp_prog(ctx):
    n = 14
    g = PGraph(ctx, n, default_property=0)
    if ctx.id == 0:
        for u in range(n - 1):
            g.add_edge_async(u, u + 1, float((u % 3) + 1))
        g.add_edge_async(0, 7, 2.5)
        g.add_edge_async(2, 11, 1.5)
    ctx.rmi_fence()
    rounds = sssp(g, 0)
    dists = [g.vertex_property(v) for v in range(n)]
    ctx.rmi_fence()
    del rounds  # round counts are backend-dependent; distances are not
    return dists


def _wordcount_prog(ctx):
    docs = [f"alpha w{(ctx.id * 3 + k) % 5} beta" for k in range(5)]
    out = word_count(ctx, docs)
    counts = out.sorted_items()
    ctx.rmi_fence()
    return counts


def _map_reduce_prog(ctx):
    items = range(ctx.id * 8, ctx.id * 8 + 8)
    out = map_reduce(ctx, items,
                     lambda x: [("even" if x % 2 == 0 else "odd", 1)])
    counts = out.sorted_items()
    ctx.rmi_fence()
    return counts


DRIVER_PROGS = {
    "sample_sort": _sort_prog,
    "scan": _scan_prog,
    "sssp": _sssp_prog,
    "wordcount": _wordcount_prog,
    "map_reduce": _map_reduce_prog,
}


@SWEEP
@pytest.mark.parametrize("driver", sorted(DRIVER_PROGS))
def test_driver_identical(run_differential, driver, nlocs):
    run_differential(DRIVER_PROGS[driver], nlocs)


# ---------------------------------------------------------------------------
# The sort -> scan -> adjacent-difference pipeline (composed drivers over
# one dataset: the acceptance-bar end-to-end program)
# ---------------------------------------------------------------------------


def _pipeline_prog(ctx):
    n = 48
    src = PArray(ctx, n, value=0)
    sums = PArray(ctx, n, value=0)
    diffs = PArray(ctx, n, value=0)
    data = np.random.default_rng(23).integers(0, 300, n)
    for i in range(n):
        if src.is_local(i):
            src.set_element(i, int(data[i]))
    ctx.rmi_fence()
    p_sort_scan_pipeline(Array1DView(src), Array1DView(sums),
                         Array1DView(diffs))
    out = src.to_list(), sums.to_list(), diffs.to_list()
    ctx.rmi_fence()
    return out


@SWEEP
def test_sort_scan_diff_pipeline_identical(run_differential, nlocs):
    run_differential(_pipeline_prog, nlocs)
