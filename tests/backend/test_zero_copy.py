"""Zero-copy shared-memory storage: arena lifecycle, slab modes, and the
end-to-end transport-mode differential (ISSUE 9 acceptance).

Covers, in-process (no workers): the :class:`ShmArena` pooled free-list
(size classes, epoch reclamation, exchange-channel reuse lag), live
bContainer storage registration, and the pooled/live pack/unpack round
trips.  End-to-end (real workers): byte-identity of a slab-heavy program
across simulated / copy-out / zero-copy transports, a ``/dev/shm`` leak
audit, the spawn start-method smoke test, and the slab-threshold toggle.

Property tests at the bottom assert arena-backed slab views stay
bit-identical across an epoch boundary (the migration-epoch contract:
storage segments are never pooled, so a live reference survives fences
for as long as the owner does).
"""

import glob

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime import (
    set_mp_zero_copy,
    set_shm_slab_threshold,
    shm_slab_threshold,
    spmd_run,
)
from repro.runtime.mp import (
    SegmentCache,
    ShmArena,
    ShmSlab,
    pack_payload,
    unpack_payload,
)

_counter = [0]


def _namer():
    _counter[0] += 1
    return f"rstest_zc_{_counter[0]}"


@pytest.fixture
def arena():
    a = ShmArena(_namer)
    yield a
    a.dispose()


# ---------------------------------------------------------------------------
# Arena unit tests
# ---------------------------------------------------------------------------


def test_size_classes_double_from_min():
    assert ShmArena._size_class(1) == 1024
    assert ShmArena._size_class(1024) == 1024
    assert ShmArena._size_class(1025) == 2048
    assert ShmArena._size_class(100_000) == 131072


def test_retired_segment_reused_only_after_epoch(arena):
    seg, cls = arena.alloc(4096)
    name = seg.name
    arena.retire(seg, cls)
    # same epoch: the wire may still be delivering the slab — no reuse
    seg2, cls2 = arena.alloc(4096)
    assert seg2.name != name
    arena.retire(seg2, cls2)
    arena.advance_epoch()
    # the fence proved every receiver dropped its view: both are warm now
    warm = {arena.alloc(4096)[0].name, arena.alloc(4096)[0].name}
    assert warm == {name, seg2.name}


def test_channel_reuse_lag(arena):
    names = {}
    # park one segment per round; descending seq order so no round ages
    # past the lag while the others are still being filled
    for seq in (2, 1, 0):
        arena.begin_channel("xchg", seq)
        seg, cls = arena.alloc(2048)
        names[seq] = seg.name
        arena.retire(seg, cls)
        arena.end_channel()
    # at round 3 only rounds <= 3 - lag(2) = 1 have aged out; round 2's
    # receivers may still hold views, so its segment stays parked
    arena.begin_channel("xchg", 3)
    reused = {arena.alloc(2048)[0].name, arena.alloc(2048)[0].name}
    fresh = arena.alloc(2048)[0].name
    arena.end_channel()
    assert reused == {names[0], names[1]}
    assert fresh not in names.values()


def test_dispose_unlinks_everything():
    a = ShmArena(_namer)
    a.alloc(1024)
    seg, cls = a.alloc(8192)
    a.retire(seg, cls)
    a.storage_alloc((16,), "int64")
    assert glob.glob("/dev/shm/rstest_zc_*")
    a.dispose()
    assert glob.glob("/dev/shm/rstest_zc_*") == []


def test_storage_alloc_and_find_live(arena):
    arr = arena.storage_alloc((8, 4), "float64")
    assert arr.flags.writeable and arr.shape == (8, 4)
    arr[...] = np.arange(32).reshape(8, 4)
    name, off = arena.find_live(arr)
    assert off == 0
    # interior C-contiguous slice: offset into the same segment
    name2, off2 = arena.find_live(arr[2:5])
    assert name2 == name and off2 == 2 * 4 * 8
    # non-contiguous views and foreign arrays are not live
    assert arena.find_live(arr[:, 1:3]) is None
    assert arena.find_live(np.zeros(16)) is None
    assert arena.storage_alloc((4,), object) is None


# ---------------------------------------------------------------------------
# Pooled / live slab round trips
# ---------------------------------------------------------------------------


def test_pooled_round_trip_and_warm_reuse(arena):
    cache = SegmentCache()
    try:
        src = np.arange(512, dtype=np.int64)
        ref = pack_payload(src, arena, threshold=1)
        assert isinstance(ref, ShmSlab) and ref.mode == "pooled"
        out = unpack_payload(ref, cache)
        assert not out.flags.writeable
        np.testing.assert_array_equal(out, src, strict=True)
        # after a fence the same warm segment carries the next slab, so
        # the receiver's cached mapping stays valid — zero syscalls
        arena.advance_epoch()
        ref2 = pack_payload(src * 2, arena, threshold=1)
        assert ref2.name == ref.name
        np.testing.assert_array_equal(unpack_payload(ref2, cache), src * 2)
        del out  # drop buffer exports so close/unlink are clean
    finally:
        cache.close()


def test_live_round_trip_is_a_reference(arena):
    cache = SegmentCache()
    try:
        arr = arena.storage_alloc((256,), "int64")
        arr[...] = np.arange(256)
        ref = pack_payload(arr, arena, threshold=1, live_ok=True)
        assert isinstance(ref, ShmSlab) and ref.mode == "live"
        view = unpack_payload(ref, cache)
        assert not view.flags.writeable
        np.testing.assert_array_equal(view, arr, strict=True)
        # a live slab is a window into owner storage, not a snapshot
        arr[0] = 999
        assert view[0] == 999
        del view, arr  # drop buffer exports so close/unlink are clean
    finally:
        cache.close()


def test_live_needs_live_ok(arena):
    arr = arena.storage_alloc((256,), "int64")
    arr[...] = 7
    ref = pack_payload(arr, arena, threshold=1)
    assert ref.mode == "pooled"  # async sends always snapshot


def test_unpack_without_cache_copies_but_never_unlinks(arena):
    src = np.arange(1024, dtype=np.float64)
    ref = pack_payload(src, arena, threshold=1)
    out = unpack_payload(ref)
    assert out.flags.writeable  # a private copy
    np.testing.assert_array_equal(out, src, strict=True)
    # the owner still reclaims the segment normally afterwards
    arena.advance_epoch()
    assert pack_payload(src, arena, threshold=1).name == ref.name


# ---------------------------------------------------------------------------
# End-to-end: transport-mode differential, leak audit, spawn, threshold
# ---------------------------------------------------------------------------


def _slab_heavy_prog(ctx):
    """Gather big slabs + a stencil write phase: exercises pooled sends,
    live bulk-reply references and arena-backed container storage."""
    from repro.algorithms.nested import p_stencil
    from repro.containers.parray import PArray
    from repro.views.array_views import Array1DView

    n = 4096
    pa = PArray(ctx, n, dtype=int)
    v = Array1DView(pa)
    sl = v.balanced_slices()
    for i in range(sl.lo, sl.hi):
        pa.set_element(i, (i * 2654435761) % 100003)
    ctx.rmi_fence()
    p_stencil(v, iters=2, dataflow=False)
    gathered = ctx.allgather_rmi(np.asarray(pa.get_range(sl.lo, sl.hi)))
    ctx.rmi_fence()
    return pa.to_list(), [int(a.sum()) for a in gathered]


def test_three_mode_differential(run_differential):
    """sim == mp copy-out == mp zero-copy, byte-identical.  Each
    ``run_differential`` call asserts sim == that transport mode; the two
    sim baselines must agree too (the oracle is deterministic), closing
    the three-way identity."""
    prev = set_mp_zero_copy(False)
    try:
        copy_out = run_differential(_slab_heavy_prog, 4)
    finally:
        set_mp_zero_copy(prev)
    zero_copy = run_differential(_slab_heavy_prog, 4)
    assert copy_out == zero_copy


def test_no_segment_leaks_after_run():
    spmd_run(_slab_heavy_prog, nlocs=4, backend="multiprocessing",
             timeout=120.0)
    leaked = glob.glob("/dev/shm/rs*")
    assert leaked == [], f"shared-memory segments leaked: {leaked}"


def test_spawn_start_method_smoke(run_differential):
    """The spawn start method re-imports everything in the child; the
    wire codec must carry fn/args (closures included) explicitly."""
    bonus = 17  # captured by the closure below

    def prog(ctx):
        data = np.full(1024, ctx.id, dtype=np.int64)
        got = ctx.allgather_rmi(data)
        return sorted(int(a[0]) + bonus for a in got)

    out = run_differential(prog, 2, start_method="spawn")
    assert out == [[17, 18]] * 2


def test_threshold_toggle_validates_and_applies():
    with pytest.raises(ValueError):
        set_shm_slab_threshold(-1)
    prev = set_shm_slab_threshold(1 << 20)
    try:
        assert shm_slab_threshold() == 1 << 20
        arena = ShmArena(_namer)
        try:
            # below the raised threshold: ships inline, no slab
            out = pack_payload(np.arange(4096, dtype=np.int64), arena)
            assert isinstance(out, np.ndarray)
        finally:
            arena.dispose()
    finally:
        set_shm_slab_threshold(prev)
    assert shm_slab_threshold() == prev


# ---------------------------------------------------------------------------
# Property: slab views across an epoch boundary
# ---------------------------------------------------------------------------

DTYPES = st.sampled_from(["int16", "int64", "float32", "float64",
                          "complex128", "bool"])
SHAPES = st.lists(st.integers(1, 13), min_size=1, max_size=3)


@settings(max_examples=40, deadline=None)
@given(dtype=DTYPES, shape=SHAPES, live=st.booleans(),
       epochs=st.integers(1, 3))
def test_storage_slab_survives_epochs(dtype, shape, live, epochs):
    """An arena-backed slab view stays bit-identical across migration
    epoch boundaries: storage segments are never pooled, and a pooled
    message segment is not recycled under the receiver's feet until the
    owner packs into it again."""
    rng = np.random.default_rng(abs(hash((dtype, tuple(shape)))) % 2**32)
    arena, cache = ShmArena(_namer), SegmentCache()
    try:
        arr = arena.storage_alloc(tuple(shape), dtype)
        assert arr is not None
        arr[...] = (rng.random(shape) * 100).astype(dtype)
        ref = pack_payload(arr, arena, threshold=1, live_ok=live)
        assert ref.mode == ("live" if live else "pooled")
        view = unpack_payload(ref, cache)
        before = view.copy()
        for _ in range(epochs):
            arena.advance_epoch()  # what a migration commit fence does
        np.testing.assert_array_equal(view, before, strict=True)
        np.testing.assert_array_equal(view, arr, strict=True)
        del view, arr  # drop buffer exports so close/unlink are clean
    finally:
        cache.close()
        arena.dispose()
