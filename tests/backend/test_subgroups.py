"""Multiprocessing-backend tests for the location-group hierarchy:
differential sim-vs-real runs of every subgroup collective flavour,
group-scoped handle registration on disjoint teams, team-distributed
nested sections, and the counting-fence regression — a subgroup fence
must complete while a non-member is unresponsive."""

import time

from repro.runtime import LocationGroup, PObject, spmd_run


class Cell(PObject):
    def __init__(self, ctx, group=None):
        super().__init__(ctx, group)
        self.value = 0
        ctx.barrier(self.group)

    def put(self, v):
        self.value = v


def _subgroup_collectives(ctx):
    """One collective of each flavour on a non-contiguous subgroup."""
    g = ctx.runtime.world.subgroup([0, 2])
    if ctx.id not in g:
        return None
    out = {
        "allreduce": ctx.allreduce_rmi(ctx.id + 1, group=g),
        "broadcast": ctx.broadcast_rmi(
            2, "payload" if ctx.id == 2 else None, group=g),
        "allgather": ctx.allgather_rmi(ctx.id * 10, group=g),
        "alltoall": ctx.alltoall_rmi(
            [f"{ctx.id}->{m}" for m in g.members], group=g),
        "scan": ctx.scan_rmi(ctx.id + 1, group=g),
    }
    ctx.barrier(g)
    c = Cell(ctx, group=g)          # collective register on the subgroup
    c._async(g.lid_of(1 - g.rank_of(ctx.id)), "put", ctx.id + 100)
    ctx.rmi_fence(g)                # subgroup fence commits member traffic
    out["cell"] = c.value
    return out


def _split_register_skew(ctx):
    """Disjoint split teams register *different numbers* of p_objects —
    the handle-desync scenario group-scoped handle sequences fix."""
    g = ctx.runtime.world.split(ctx, ctx.id // 2)
    cells = [Cell(ctx, group=g) for _ in range(1 if ctx.id < 2 else 3)]
    for k, c in enumerate(cells):
        peer = g.lid_of(1 - g.rank_of(ctx.id))
        c._async(peer, "put", 1000 * ctx.id + k)
        ctx.rmi_fence(g)
    return [c.value for c in cells]


def _team_bucket_sort(ctx):
    from repro.algorithms.nested import p_bucket_sort_nested
    from repro.containers.parray import PArray
    from repro.views.array_views import Array1DView
    from repro.views.derived_views import slab_write

    n = 64
    pa = PArray(ctx, n, value=0, dtype=int)
    v = Array1DView(pa)
    sl = v.balanced_slices()
    slab_write(v, sl.lo, [(i * 2654435761) % 509
                          for i in range(sl.lo, sl.hi)])
    ctx.rmi_fence()
    p_bucket_sort_nested(v, inner_group_size=2)
    out = pa.to_list()
    pa.destroy()
    return out


def _team_segmented(ctx):
    import operator

    from repro.containers.composition import (
        _participating_refs,
        compose_parray_of_parrays,
        nested_map,
        segmented_reduce,
        segmented_scan,
    )

    outer = compose_parray_of_parrays(ctx, [3, 5, 2, 6], value=1, dtype=int,
                                      inner_group_size=2)
    nested_map(outer, lambda x: x * 2)
    sums = segmented_reduce(outer, operator.add, 0)
    segmented_scan(outer, operator.add, 0)
    scanned = {}
    for gid, ref in _participating_refs(outer):
        vals = ref.resolve(ctx.runtime, ctx.id).to_list()
        if ctx.id == ref.owner:
            scanned[gid] = vals
    return sums, scanned


class TestDifferentialSubgroups:
    def test_collective_flavours_on_subgroup(self, run_differential):
        run_differential(_subgroup_collectives, 4)

    def test_register_skew_across_disjoint_teams(self, run_differential):
        run_differential(_split_register_skew, 4)

    def test_team_bucket_sort(self, run_differential):
        run_differential(_team_bucket_sort, 4)

    def test_team_composed_segmented(self, run_differential):
        run_differential(_team_segmented, 4)


class TestSubgroupFenceIsolation:
    def test_fence_completes_while_nonmember_sleeps(self):
        """A {0, 1} fence must count only member<->member traffic: with a
        message to sleeping location 3 still un-serviced, a fence that
        (wrongly) watched whole-runtime counters would stall until 3 woke
        up.  The group-restricted fence finishes orders of magnitude
        sooner than 3's nap."""
        nap = 3.0

        def prog(ctx):
            c = Cell(ctx)
            sub = ctx.runtime.world.subgroup([0, 1])
            ctx.barrier()
            if ctx.id == 3:
                time.sleep(nap)     # unresponsive: services no requests
                ctx.rmi_fence()
                return c.value
            if ctx.id == 0:
                c._async(3, "put", 55)   # in flight while 3 sleeps
            elapsed = None
            if ctx.id in sub:
                t0 = time.monotonic()
                ctx.rmi_fence(sub)
                elapsed = time.monotonic() - t0
            ctx.rmi_fence()
            return elapsed

        out = spmd_run(prog, nlocs=4, machine="smp",
                       backend="multiprocessing", timeout=60.0)
        assert out[3] == 55                      # delivered by world fence
        assert out[0] < nap / 2 and out[1] < nap / 2, (
            f"subgroup fence waited on a non-member: {out[:2]}")

    def test_sim_oracle_agrees(self):
        """Same scoping on the simulator (minus the wall clock): the
        subgroup fence leaves the 0->3 message pending."""
        def prog(ctx):
            c = Cell(ctx)
            sub = ctx.runtime.world.subgroup([0, 1])
            if ctx.id == 0:
                c._async(3, "put", 55)
            ctx.barrier()
            pending = None
            if ctx.id in sub:
                ctx.rmi_fence(sub)
                pending = ctx.runtime.network.has_pending(0, 3)
            ctx.rmi_fence()
            return pending, c.value if ctx.id == 3 else None

        out = spmd_run(prog, nlocs=4, machine="smp", backend="simulated")
        assert out[0][0] is True and out[1][0] is True
        assert out[3][1] == 55
