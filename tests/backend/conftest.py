"""Fixtures for the multiprocessing-backend test layer.

Every test here launches real OS processes, so hygiene is explicit:

* ``mp_teardown`` (autouse) reaps any worker the test leaked (a failure
  mid-run must not poison later tests with orphan processes or stale
  ``/dev/shm`` segments) and restores the process-wide backend selection.
* ``run_differential`` runs one SPMD program under the simulated oracle
  and under the multiprocessing backend and asserts the results are
  byte-identical (canonical pickle of the canonicalised values) — the
  ROADMAP item 1 acceptance bar.

Retries are deliberately not used anywhere in this tree: a flaky
concurrency test is a bug report, not noise to paper over.
"""

import glob
import multiprocessing
import os
import pickle

import numpy as np
import pytest

from repro.runtime import set_backend, spmd_run

#: hard per-run wall-clock cap: a deadlocked fence fails the test quickly
#: instead of hanging the suite (CI adds a job-level `timeout` on top)
MP_RUN_TIMEOUT = 120.0


def canonical_bytes(value) -> bytes:
    """Stable, identity-free byte encoding for differential comparison.

    Raw ``pickle.dumps`` is unusable here: the pickler memoises by object
    *identity*, and a value that crossed a process boundary loses the
    aliasing (e.g. interned strings) its single-process twin still has —
    byte differences with zero value difference.  This encoder is value-
    only: type tag + bit-exact content, recursing through containers;
    floats via ``float.hex()`` so -0.0/NaN/precision survive; ndarrays as
    (dtype, shape, raw buffer)."""
    out = []
    _enc(value, out)
    return b"\x1e".join(out)


def _enc(v, out: list) -> None:
    if isinstance(v, np.ndarray):
        out.append(f"nd:{v.dtype}:{v.shape}".encode())
        out.append(v.tobytes())
        return
    if isinstance(v, (np.integer, np.floating, np.bool_)):
        v = v.item()
    if v is None or isinstance(v, bool) or isinstance(v, int):
        out.append(f"{type(v).__name__}:{v!r}".encode())
    elif isinstance(v, float):
        out.append(b"f:" + (b"nan" if v != v else v.hex().encode()))
    elif isinstance(v, str):
        out.append(b"s:" + v.encode())
    elif isinstance(v, bytes):
        out.append(b"b:" + v)
    elif isinstance(v, (list, tuple)):
        out.append(f"{type(v).__name__}[{len(v)}".encode())
        for x in v:
            _enc(x, out)
        out.append(b"]")
    elif isinstance(v, dict):
        out.append(f"dict[{len(v)}".encode())
        for k, x in sorted(v.items(), key=repr):
            _enc(k, out)
            _enc(x, out)
        out.append(b"]")
    else:
        out.append(b"o:" + pickle.dumps(v, protocol=4))


_HERE = os.path.dirname(__file__)


def pytest_collection_modifyitems(items):
    # the hook sees the whole session's items; mark only this tree's
    for item in items:
        if str(item.path).startswith(_HERE):
            item.add_marker(pytest.mark.mp_backend)


@pytest.fixture(autouse=True)
def mp_teardown():
    """Reap leaked workers and shared-memory segments after every test."""
    yield
    set_backend("simulated")
    for proc in multiprocessing.active_children():
        if proc.name.startswith("repro-loc-"):
            proc.terminate()
            proc.join(timeout=5.0)
    for path in glob.glob("/dev/shm/rs*"):
        try:
            os.unlink(path)
        except OSError:
            pass


@pytest.fixture
def run_differential():
    def _run(prog, nlocs, args=(), machine="smp", **backend_opts):
        sim = spmd_run(prog, nlocs=nlocs, args=args, machine=machine,
                       backend="simulated")
        real = spmd_run(prog, nlocs=nlocs, args=args, machine=machine,
                        backend="multiprocessing", timeout=MP_RUN_TIMEOUT,
                        **backend_opts)
        assert canonical_bytes(sim) == canonical_bytes(real), (
            f"backend divergence at P={nlocs}:\n sim={sim!r}\n real={real!r}")
        # zero-copy leak audit: every worker's arena must have unlinked
        # all of its segments (pooled, storage and legacy) on the way out
        leaked = glob.glob("/dev/shm/rs*")
        assert not leaked, f"shared-memory segments leaked: {leaked}"
        return sim
    return _run
