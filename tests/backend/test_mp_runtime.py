"""Protocol-level tests of the multiprocessing backend: collectives with
unpicklable operators, sync/split-phase round trips, fence quiescence,
one-sided fences, shared-memory slab transport, failure propagation and
fail-fast deadlock detection."""

import numpy as np
import pytest

from repro.runtime import (
    PObject,
    SpmdError,
    spmd_run,
    spmd_run_detailed,
)
from repro.runtime.mp import ShmSlab, pack_payload, unpack_payload

TIMEOUT = 60.0


def mp_run(prog, nlocs=4, args=(), **kw):
    kw.setdefault("timeout", TIMEOUT)
    return spmd_run(prog, nlocs=nlocs, args=args,
                    backend="multiprocessing", **kw)


class Cell(PObject):
    """Minimal shared object: one slot per location."""

    def __init__(self, ctx, value=0):
        super().__init__(ctx)
        self.value = value
        self.log = []

    def set(self, v):
        self.value = v

    def add(self, v):
        self.value += v

    def get(self):
        return self.value

    def record(self, v):
        self.log.append(v)

    def forward(self, dest, v):
        """Handler-spawned continuation: re-sends from inside a handler."""
        if dest == self.ctx.id:
            self.value += v
        else:
            self.async_to(dest, "forward", dest, v)

    def async_to(self, dest, method, *args):
        self.runtime.current_location.async_rmi(dest, self.handle, method,
                                                *args)


class TestCollectives:
    def test_allreduce_with_lambda_op(self):
        def prog(ctx):
            return ctx.allreduce_rmi(ctx.id + 1, lambda a, b: a * b)
        assert mp_run(prog, 4) == [24] * 4

    def test_scan_inclusive_exclusive(self):
        def prog(ctx):
            inc = ctx.scan_rmi(ctx.id + 1)
            exc = ctx.scan_rmi(ctx.id + 1, exclusive=True)
            return inc, exc
        out = mp_run(prog, 3)
        assert [r[0] for r in out] == [(1, 6), (3, 6), (6, 6)]
        assert [r[1] for r in out] == [(None, 6), (1, 6), (3, 6)]

    def test_broadcast_allgather_alltoall(self):
        def prog(ctx):
            b = ctx.broadcast_rmi(1, "payload" if ctx.id == 1 else None)
            g = ctx.allgather_rmi(ctx.id * 2)
            a = ctx.alltoall_rmi([f"{ctx.id}->{d}" for d in range(ctx.nlocs)])
            return b, g, a
        out = mp_run(prog, 3)
        assert all(r[0] == "payload" for r in out)
        assert all(r[1] == [0, 2, 4] for r in out)
        assert out[1][2] == ["0->1", "1->1", "2->1"]

    def test_reduce_rooted(self):
        def prog(ctx):
            return ctx.reduce_rmi(ctx.id, root=2)
        assert mp_run(prog, 4) == [None, None, 6, None]

    def test_barrier_and_subgroup_collective(self):
        from repro.runtime import LocationGroup

        def prog(ctx):
            ctx.barrier()
            if ctx.id < 2:
                g = LocationGroup([0, 1])
                return ctx.allreduce_rmi(10 + ctx.id, group=g)
            return None
        assert mp_run(prog, 4) == [21, 21, None, None]


class TestPointToPoint:
    def test_sync_rmi_round_trip(self):
        def prog(ctx):
            c = Cell(ctx, value=ctx.id * 100)
            ctx.rmi_fence()
            got = ctx.sync_rmi((ctx.id + 1) % ctx.nlocs, c.handle, "get")
            ctx.rmi_fence()
            return got
        assert mp_run(prog, 4) == [100, 200, 300, 0]

    def test_opaque_rmi_future(self):
        def prog(ctx):
            c = Cell(ctx, value=ctx.id + 7)
            ctx.rmi_fence()
            fut = ctx.opaque_rmi((ctx.id + 1) % ctx.nlocs, c.handle, "get")
            val = fut.get()
            ctx.rmi_fence()
            return val
        assert mp_run(prog, 3) == [8, 9, 7]

    def test_async_completes_at_fence(self):
        def prog(ctx):
            c = Cell(ctx, value=0)
            ctx.rmi_fence()
            # everyone bombs location 0 with commutative adds
            for k in range(5):
                ctx.async_rmi(0, c.handle, "add", 1)
            ctx.rmi_fence()
            return c.value
        out = mp_run(prog, 4)
        assert out[0] == 20 and out[1:] == [0, 0, 0]

    def test_source_fifo_per_channel(self):
        def prog(ctx):
            c = Cell(ctx)
            ctx.rmi_fence()
            for k in range(30):
                ctx.async_rmi(0, c.handle, "record", (ctx.id, k))
            ctx.rmi_fence()
            return c.log
        log = mp_run(prog, 4)[0]
        for src in range(4):
            seq = [k for (s, k) in log if s == src]
            assert seq == sorted(seq), f"FIFO violated for source {src}"

    def test_os_fence_completes_forwarded_chain(self):
        def prog(ctx):
            c = Cell(ctx, value=0)
            ctx.rmi_fence()
            if ctx.id == 0:
                # 0 -> 1 -> 2 -> 3 forwarded continuation chain; os_fence on
                # the origin alone must cover the whole chain
                c.async_to(1, "forward", 3, 5)
                ctx.os_fence()
            ctx.barrier()
            val = c.value
            ctx.rmi_fence()
            return val
        assert mp_run(prog, 4)[3] == 5


class TestSlabTransport:
    def test_big_array_via_shared_memory(self):
        def prog(ctx):
            big = np.arange(50_000, dtype=np.float64) + ctx.id
            slabs = [big if d != ctx.id else None for d in range(ctx.nlocs)]
            got = ctx.bulk_exchange(slabs)
            checks = [float(got[d][0]) for d in range(ctx.nlocs)
                      if d != ctx.id]
            ctx.rmi_fence()
            return checks
        out = mp_run(prog, 3)
        assert out[0] == [1.0, 2.0] and out[2] == [0.0, 1.0]

    def test_bulk_gather_order(self):
        def prog(ctx):
            got = ctx.bulk_gather(np.full(4, ctx.id))
            ctx.rmi_fence()
            return [int(g[0]) for g in got]
        assert mp_run(prog, 4) == [[0, 1, 2, 3]] * 4

    def test_pack_unpack_threshold(self):
        small = np.arange(8)
        big = np.arange(4096, dtype=np.int64)
        names = iter(f"rstest_pk_{i}" for i in range(10))
        packed = pack_payload((small, {"x": big}), lambda: next(names),
                              threshold=1024)
        assert isinstance(packed[0], np.ndarray)  # below threshold: inline
        assert isinstance(packed[1]["x"], ShmSlab)
        out = unpack_payload(packed)
        np.testing.assert_array_equal(out[0], small)
        np.testing.assert_array_equal(out[1]["x"], big)


class TestReporting:
    def test_detailed_report_wall_clock_and_stats(self):
        def prog(ctx):
            c = Cell(ctx)
            ctx.rmi_fence()
            ctx.async_rmi((ctx.id + 1) % ctx.nlocs, c.handle, "add", 1)
            ctx.rmi_fence()
            return ctx.id
        rep = spmd_run_detailed(prog, nlocs=2, backend="multiprocessing",
                                timeout=TIMEOUT)
        assert rep.backend == "multiprocessing"
        assert rep.results == [0, 1]
        assert rep.wall_seconds > 0
        assert len(rep.clocks) == 2 and rep.max_clock > 0
        assert rep.stats.total.async_rmi_sent == 2

    def test_toggle_options_reach_runner(self):
        with pytest.raises(TypeError):
            spmd_run(lambda ctx: 0, nlocs=1, backend="simulated",
                     timeout=1.0)


class TestFailures:
    def test_handler_error_propagates(self):
        def prog(ctx):
            c = Cell(ctx)
            ctx.rmi_fence()
            if ctx.id == 0:
                ctx.sync_rmi(1, c.handle, "no_such_method")
            ctx.rmi_fence()
        with pytest.raises(SpmdError, match="no_such_method"):
            mp_run(prog, 2)

    def test_worker_exception_propagates(self):
        def prog(ctx):
            if ctx.id == 1:
                raise ValueError("worker boom")
            ctx.rmi_fence()
        with pytest.raises(SpmdError, match="worker boom"):
            mp_run(prog, 2)

    def test_mismatched_collective_fails_fast(self):
        def prog(ctx):
            if ctx.id == 0:
                ctx.allreduce_rmi(1)
            else:
                ctx.barrier()
        with pytest.raises(SpmdError, match="mismatch|timed out|aborted"):
            mp_run(prog, 2, op_timeout=5.0, timeout=30.0)

    def test_lone_collective_times_out(self):
        def prog(ctx):
            if ctx.id == 0:
                ctx.allreduce_rmi(1)  # location 1 never joins
            return ctx.id
        with pytest.raises(SpmdError, match="timed out|aborted"):
            mp_run(prog, 2, op_timeout=5.0, timeout=30.0)

    def test_cross_location_lookup_rejected(self):
        def prog(ctx):
            c = Cell(ctx)
            ctx.rmi_fence()
            try:
                ctx.runtime.lookup(c.handle, (ctx.id + 1) % ctx.nlocs)
                return "reached"
            except SpmdError as exc:
                res = "denied" if "shared address space" in str(exc) else "?"
            ctx.rmi_fence()
            return res
        assert mp_run(prog, 2) == ["denied", "denied"]
