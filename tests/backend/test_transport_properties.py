"""Hypothesis property tests for transport invariants, run against both
backends where the invariant is observable end-to-end:

* slab pack/unpack identity over random dtypes/shapes (the shared-memory
  lifecycle must be bit-preserving);
* wire serialization round-trip of Message payloads and combining records,
  including closures (the simulated oracle's calling convention);
* per-(src, dst) source-FIFO ordering of async RMIs.
"""

import pickle

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime import Message, PObject, estimate_size, spmd_run
from repro.runtime.mp import pack_payload, unpack_payload, wire_dumps, wire_loads

DTYPES = st.sampled_from(["int8", "uint16", "int32", "int64",
                          "float32", "float64", "complex128", "bool"])
SHAPES = st.lists(st.integers(0, 17), min_size=0, max_size=3)

_name_counter = [0]


def _namer():
    _name_counter[0] += 1
    return f"rstest_prop_{_name_counter[0]}"


@settings(max_examples=40, deadline=None)
@given(dtype=DTYPES, shape=SHAPES, threshold=st.sampled_from([1, 64, 1 << 30]))
def test_slab_pack_unpack_identity(dtype, shape, threshold):
    rng = np.random.default_rng(abs(hash((dtype, tuple(shape)))) % 2**32)
    arr = (rng.random(shape) * 100).astype(dtype)
    packed = pack_payload({"a": arr, "n": [arr, 3]}, _namer,
                          threshold=threshold)
    out = unpack_payload(packed)
    np.testing.assert_array_equal(out["a"], arr, strict=True)
    np.testing.assert_array_equal(out["n"][0], arr, strict=True)
    assert out["n"][1] == 3


SCALARS = st.one_of(st.integers(-2**40, 2**40), st.booleans(), st.none(),
                    st.floats(allow_nan=False), st.text(max_size=12),
                    st.binary(max_size=12))
PAYLOADS = st.recursive(
    SCALARS,
    lambda inner: st.one_of(
        st.lists(inner, max_size=4),
        st.tuples(inner, inner),
        st.dictionaries(st.text(max_size=6), inner, max_size=4)),
    max_leaves=12)


@settings(max_examples=60, deadline=None)
@given(args=PAYLOADS, src=st.integers(0, 7), dst=st.integers(0, 7))
def test_message_wire_round_trip(args, src, dst):
    msg = Message(src, dst, 5, "accumulate", (args,),
                  32 + estimate_size((args,)), 0.0, src)
    wire = ("req", msg.src, msg.origin, msg.handle, msg.method, msg.args)
    back = wire_loads(wire_dumps(wire))
    assert back == wire


@settings(max_examples=40, deadline=None)
@given(records=st.lists(
    st.tuples(st.integers(0, 9),
              st.sampled_from(["insert", "accumulate", "set_element"]),
              st.tuples(st.integers(), st.integers())),
    max_size=8))
def test_combining_record_round_trip(records):
    """Combining buffers ship as one bulk message of (handle, method, args)
    records; the wire codec must preserve them exactly."""
    back = wire_loads(wire_dumps(("req", 0, 0, 3, "_apply_combined",
                                  (records,))))
    assert back[5] == (records,)


def test_closure_wire_round_trip():
    offset = 17

    def make_adder(k):
        def add(x):
            return x + k + offset
        return add

    fns = wire_loads(wire_dumps([make_adder(1), make_adder(2)]))
    assert [f(10) for f in fns] == [28, 29]


def test_mutually_recursive_closures_round_trip():
    def make_pair():
        def even(n):
            return True if n == 0 else odd(n - 1)

        def odd(n):
            return False if n == 0 else even(n - 1)
        return even
    even = wire_loads(wire_dumps(make_pair()))
    assert even(10) is True and even(7) is False


class Recorder(PObject):
    def __init__(self, ctx):
        super().__init__(ctx)
        self.log = []

    def record(self, tag):
        self.log.append(tag)


def _fifo_prog(ctx, n_msgs):
    r = Recorder(ctx)
    ctx.rmi_fence()
    for k in range(n_msgs):
        dest = (ctx.id + 1 + k % max(1, ctx.nlocs - 1)) % ctx.nlocs
        ctx.async_rmi(dest, r.handle, "record", (ctx.id, k))
    ctx.rmi_fence()
    return r.log


@settings(max_examples=5, deadline=None)
@given(n_msgs=st.integers(1, 25), nlocs=st.sampled_from([2, 4]))
def test_source_fifo_both_backends(n_msgs, nlocs):
    for backend in ("simulated", "multiprocessing"):
        logs = spmd_run(_fifo_prog, nlocs=nlocs, args=(n_msgs,),
                        backend=backend)
        for log in logs:
            for src in range(nlocs):
                seq = [k for (s, k) in log if s == src]
                assert seq == sorted(seq), (
                    f"{backend}: FIFO violated for source {src}: {seq}")


def test_location_stats_picklable():
    """Worker processes ship their LocationStats back through a queue."""
    from repro.runtime import LocationStats

    st_ = LocationStats()
    st_.async_rmi_sent = 3
    clone = pickle.loads(pickle.dumps(st_))
    assert clone.async_rmi_sent == 3
