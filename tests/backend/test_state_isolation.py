"""Latent-assumption audit: module-level mutable state under real processes.

The single-process simulator tolerates sloppy global state — every location
shares one interpreter, so a toggle flipped anywhere is visible everywhere.
Real worker processes break that assumption.  These tests pin down the
contract the launcher must uphold:

* toggles set *before* the run are snapshotted and re-applied inside every
  worker (``snapshot_toggles``/``apply_toggles``);
* the process-wide default backend (``set_backend``) routes ``spmd_run``
  without an explicit ``backend=`` argument;
* state mutated *inside* a worker does not leak back into the parent, and
  one run's state does not bleed into the next.
"""

import pytest

from repro.runtime import (
    apply_toggles,
    available_backends,
    combining_enabled,
    current_backend,
    set_backend,
    set_combining,
    set_combining_window,
    set_zero_copy,
    snapshot_toggles,
    spmd_run,
    spmd_run_detailed,
    zero_copy_enabled,
)


def _observe_toggles(ctx):
    # Executed inside the worker process: report what the module-level
    # toggles look like from there.
    snap = snapshot_toggles()
    return ctx.id, snap


class TestTogglePropagation:
    def test_toggles_set_before_run_reach_workers(self):
        baseline = snapshot_toggles()
        try:
            set_combining(False)
            set_combining_window(77)
            set_zero_copy(True)
            out = spmd_run(_observe_toggles, nlocs=2,
                           backend="multiprocessing", timeout=60.0)
            for _lid, snap in out:
                assert snap["combining"] is False
                assert snap["combining_window"] == 77
                assert snap["zero_copy"] is True
        finally:
            apply_toggles(baseline)

    def test_defaults_reach_workers_untouched(self):
        baseline = snapshot_toggles()
        out = spmd_run(_observe_toggles, nlocs=2,
                       backend="multiprocessing", timeout=60.0)
        for _lid, snap in out:
            assert snap == baseline

    def test_snapshot_apply_round_trip(self):
        baseline = snapshot_toggles()
        try:
            set_combining(not baseline["combining"])
            set_zero_copy(not baseline["zero_copy"])
            mutated = snapshot_toggles()
            assert mutated != baseline
            apply_toggles(baseline)
            assert snapshot_toggles() == baseline
            apply_toggles(mutated)
            assert combining_enabled() is not baseline["combining"]
            assert zero_copy_enabled() is not baseline["zero_copy"]
        finally:
            apply_toggles(baseline)


def _mutate_toggles(ctx):
    set_combining(False)
    set_zero_copy(True)
    set_backend("multiprocessing")
    return ctx.id


class TestIsolation:
    def test_worker_mutations_do_not_leak_to_parent(self):
        baseline = snapshot_toggles()
        backend_before = current_backend()
        spmd_run(_mutate_toggles, nlocs=2, backend="multiprocessing",
                 timeout=60.0)
        assert snapshot_toggles() == baseline
        assert current_backend() == backend_before

    def test_no_cross_run_state_leak(self):
        # Two back-to-back runs with opposite toggle settings: the second
        # run's workers must see the second snapshot, not the first.
        baseline = snapshot_toggles()
        try:
            set_combining(False)
            first = spmd_run(_observe_toggles, nlocs=2,
                             backend="multiprocessing", timeout=60.0)
            set_combining(True)
            second = spmd_run(_observe_toggles, nlocs=2,
                              backend="multiprocessing", timeout=60.0)
            assert all(s["combining"] is False for _l, s in first)
            assert all(s["combining"] is True for _l, s in second)
        finally:
            apply_toggles(baseline)


class TestBackendSelection:
    def test_registry(self):
        assert available_backends() == ("simulated", "multiprocessing")
        with pytest.raises(ValueError, match="unknown backend"):
            set_backend("mpi")

    def test_set_backend_routes_default_dispatch(self):
        try:
            set_backend("multiprocessing")
            assert current_backend() == "multiprocessing"
            rep = spmd_run_detailed(lambda ctx: ctx.allreduce_rmi(1),
                                    nlocs=2, timeout=60.0)
            assert rep.backend == "multiprocessing"
            assert rep.results == [2, 2]
        finally:
            set_backend("simulated")
        rep = spmd_run_detailed(lambda ctx: ctx.allreduce_rmi(1), nlocs=2)
        assert rep.backend == "simulated"

    def test_explicit_backend_overrides_default(self):
        try:
            set_backend("multiprocessing")
            rep = spmd_run_detailed(lambda ctx: ctx.id, nlocs=2,
                                    backend="simulated")
            assert rep.backend == "simulated"
        finally:
            set_backend("simulated")
