"""Perf-regression gate tests: the ``--check`` comparator against
synthetic baselines (regressions, tolerances, added/removed kernels,
malformed/mismatched schemas) and the CLI end-to-end on tiny configs."""

import copy
import json

import pytest

from repro.evaluation.bench import (
    SCHEMA_VERSION,
    BaselineError,
    bench_payload,
    check_against_baseline,
    compare_payloads,
    update_baseline,
    write_bench,
)
from repro.evaluation.bench import main as bench_main
from repro.evaluation.harness import scaling_columns


def _metrics(time_us=100.0, physical_msgs=10, bytes_sent=1000, fences=4):
    return {"N": 256, "time_us": time_us, "physical_msgs": physical_msgs,
            "bytes_sent": bytes_sent, "fences": fences}


def _v2(kernels=("reduce", "scan")):
    return {
        "schema_version": SCHEMA_VERSION,
        "generated": "2026-01-01",
        "machine": "cray4",
        "snapshot": {"P": 2, "n_per_loc": 128,
                     "kernels": {k: _metrics() for k in kernels}},
        "strong": {"P": [1, 2], "N": 256, "kernels": {
            k: {"1": {**_metrics(), "speedup": 1.0, "efficiency": 1.0},
                "2": {**_metrics(time_us=60.0), "speedup": 1.667,
                      "efficiency": 0.833}}
            for k in kernels}},
    }


def _v1(kernels=("reduce", "scan")):
    return {"generated": "2025-01-01", "machine": "cray4", "P": 2,
            "n_per_loc": 128, "kernels": {k: _metrics() for k in kernels}}


class TestComparator:
    def test_identical_payloads_pass(self):
        base = _v2()
        report = compare_payloads(base, copy.deepcopy(base))
        assert report.ok
        assert report.compared == 6  # 2 kernels x (snapshot + 2 strong Ps)
        assert not report.regressions and not report.removed

    def test_time_within_tolerance_passes(self):
        base, fresh = _v2(), _v2()
        fresh["snapshot"]["kernels"]["reduce"]["time_us"] = 109.0  # +9%
        assert compare_payloads(base, fresh).ok

    def test_time_regression_fails_with_delta_row(self):
        base, fresh = _v2(), _v2()
        fresh["snapshot"]["kernels"]["reduce"]["time_us"] = 115.0  # +15%
        report = compare_payloads(base, fresh)
        assert not report.ok
        (coord, kernel, metric, b, f, delta), = report.regressions
        assert (coord, kernel, metric) == ("snapshot", "reduce", "time_us")
        assert b == 100.0 and f == 115.0
        assert delta == pytest.approx(0.15)
        assert "snapshot" in report.format_table()

    def test_time_improvement_passes(self):
        base, fresh = _v2(), _v2()
        fresh["snapshot"]["kernels"]["reduce"]["time_us"] = 50.0
        assert compare_payloads(base, fresh).ok

    def test_any_message_increase_fails(self):
        base, fresh = _v2(), _v2()
        fresh["strong"]["kernels"]["scan"]["2"]["physical_msgs"] = 11
        report = compare_payloads(base, fresh)
        assert not report.ok
        assert report.regressions[0][:3] == ("strong/P=2", "scan",
                                             "physical_msgs")

    def test_any_fence_increase_fails(self):
        base, fresh = _v2(), _v2()
        fresh["snapshot"]["kernels"]["scan"]["fences"] = 5
        assert not compare_payloads(base, fresh).ok

    def test_bytes_have_tolerance(self):
        base, fresh = _v2(), _v2()
        fresh["snapshot"]["kernels"]["scan"]["bytes_sent"] = 1050  # +5%
        assert compare_payloads(base, fresh).ok
        fresh["snapshot"]["kernels"]["scan"]["bytes_sent"] = 1150  # +15%
        assert not compare_payloads(base, fresh).ok

    def test_kernel_removed_fails(self):
        base = _v2(kernels=("reduce", "scan"))
        fresh = _v2(kernels=("reduce",))
        report = compare_payloads(base, fresh)
        assert not report.ok
        assert ("snapshot", "scan") in report.removed
        assert "--update-baseline" in report.format_table()

    def test_kernel_added_passes_with_note(self):
        base = _v2(kernels=("reduce",))
        fresh = _v2(kernels=("reduce", "scan"))
        report = compare_payloads(base, fresh)
        assert report.ok
        assert ("snapshot", "scan") in report.added

    def test_v1_baseline_compares_snapshot_only(self):
        report = compare_payloads(_v1(), _v2())
        assert report.ok
        assert report.compared == 2  # the two snapshot kernels only
        v1_bad = _v1()
        v1_bad["kernels"]["reduce"]["time_us"] = 80.0  # fresh is +25%
        assert not compare_payloads(v1_bad, _v2()).ok

    def test_malformed_baseline_raises(self):
        with pytest.raises(BaselineError):
            compare_payloads({"generated": "x"}, _v2())  # v1 w/o kernels
        with pytest.raises(BaselineError):
            compare_payloads({"schema_version": SCHEMA_VERSION}, _v2())

    def test_unsupported_schema_version_raises(self):
        bad = _v2()
        bad["schema_version"] = 99
        with pytest.raises(BaselineError):
            compare_payloads(bad, _v2())

    def test_machine_mismatch_raises(self):
        other = _v2()
        other["machine"] = "cray5"
        with pytest.raises(BaselineError):
            compare_payloads(_v2(), other)


class TestScalingColumns:
    def test_strong_scaling(self):
        sp, eff = scaling_columns([1, 2, 4], [100.0, 50.0, 25.0])
        assert sp == [1.0, 2.0, 4.0]
        assert eff == [1.0, 1.0, 1.0]

    def test_strong_sublinear(self):
        sp, eff = scaling_columns([1, 4], [100.0, 50.0])
        assert sp == [1.0, 2.0]
        assert eff == [1.0, 0.5]

    def test_weak_scaling_flat_time_is_ideal(self):
        sp, eff = scaling_columns([1, 2, 4], [100.0, 100.0, 100.0],
                                  weak=True)
        assert eff == [1.0, 1.0, 1.0]
        assert sp == [1.0, 2.0, 4.0]

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            scaling_columns([1, 2], [100.0])


class TestGateEndToEnd:
    """Tiny real runs (P<=2, small N) through the public entry points."""

    def _tiny_sections(self):
        return {"snapshot": (2, 64), "strong": ((1, 2), 128),
                "weak": None, "ablations": None}

    def test_check_passes_on_unchanged_tree(self, tmp_path):
        path = tmp_path / "BENCH_tiny.json"
        write_bench(str(path), generated="t", **self._tiny_sections())
        assert check_against_baseline(str(path)) == 0

    def test_check_fails_on_injected_regression(self, tmp_path, capsys):
        path = tmp_path / "BENCH_tiny.json"
        payload = write_bench(str(path), generated="t",
                              **self._tiny_sections())
        payload["snapshot"]["kernels"]["scan"]["time_us"] *= 0.5
        path.write_text(json.dumps(payload))
        assert check_against_baseline(str(path)) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out and "scan" in out and "time_us" in out

    def test_cli_exit_codes(self, tmp_path):
        path = tmp_path / "BENCH_tiny.json"
        write_bench(str(path), generated="t", snapshot=(2, 64),
                    strong=None, weak=None, ablations=None)
        assert bench_main(["--check", str(path)]) == 0
        bad = tmp_path / "broken.json"
        bad.write_text("{not json")
        assert bench_main(["--check", str(bad)]) == 2
        assert bench_main(["--check", str(tmp_path / "missing.json")]) == 2

    def test_check_accepts_v1_snapshot(self, tmp_path):
        payload = bench_payload(generated="t", snapshot=(2, 64),
                                strong=None, weak=None, ablations=None)
        snap = payload["snapshot"]
        v1 = {"generated": "t", "machine": "cray4", "P": snap["P"],
              "n_per_loc": snap["n_per_loc"], "kernels": snap["kernels"]}
        path = tmp_path / "BENCH_v1.json"
        path.write_text(json.dumps(v1))
        assert check_against_baseline(str(path)) == 0

    def test_update_baseline_preserves_recorded_sections(self, tmp_path):
        path = tmp_path / "BENCH_tiny.json"
        write_bench(str(path), generated="t", **self._tiny_sections())
        refreshed = update_baseline(str(path), generated="t2")
        on_disk = json.loads(path.read_text())
        assert on_disk["generated"] == "t2"
        assert on_disk["schema_version"] == SCHEMA_VERSION
        assert on_disk["snapshot"]["P"] == 2
        assert on_disk["strong"]["P"] == [1, 2]
        assert "weak" not in on_disk and "ablations" not in on_disk
        assert refreshed["snapshot"]["kernels"].keys() \
            == on_disk["snapshot"]["kernels"].keys()
        assert check_against_baseline(str(path)) == 0
