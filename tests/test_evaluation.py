"""Evaluation-driver tests: every figure driver runs and reproduces the
paper's qualitative shape (who wins, which way curves bend)."""

import pytest

import repro.evaluation as ev


class TestPArrayFigures:
    def test_fig27_constructor_grows_with_size(self):
        res = ev.fig27_constructor(nlocs_list=(2,), sizes=(1024, 8192),
                                   machines=("cray4",))
        times = res.column("time_us")
        assert times[1] > times[0]

    def test_fig28_flat_in_container_size(self):
        res = ev.fig28_local_methods(sizes=(512, 8192), n_per_loc=100)
        per_op = res.column("per_op_us")
        # closed-form translation: cost independent of N (within 5%)
        assert abs(per_op[0] - per_op[3]) / per_op[0] < 0.05

    def test_fig29_weak_scaling_flat(self):
        res = ev.fig29_methods_weak(nlocs_list=(1, 4), n_per_loc=100)
        sets = [r for r in res.rows if r[1] == "set_element"]
        assert sets[1][3] < sets[0][3] * 2.0  # near-flat, not linear in P

    def test_fig30_flavour_ordering(self):
        res = ev.fig30_method_flavours(n_per_loc=150)
        t = {r[0]: r[1] for r in res.rows}
        assert (t["set_element"] < t["split_phase_get_element"]
                < t["get_element"])

    def test_fig31_remote_fraction_monotone(self):
        res = ev.fig31_remote_fraction(n_per_loc=100,
                                       fractions=(0.0, 0.5, 1.0))
        gets = [r[2] for r in res.rows if r[1] == "get_element"]
        assert gets[0] < gets[1] < gets[2]

    def test_fig32_runs(self):
        res = ev.fig32_local_remote_sizes(sizes=(512,), n_per_loc=80)
        assert len(res.rows) == 2

    def test_fig33_weak_scaling(self):
        res = ev.fig33_generic_algorithms(nlocs_list=(1, 4), n_per_loc=2000)
        gen = [r[2] for r in res.rows if r[1] == "p_generate"]
        assert gen[1] < gen[0] * 1.5  # flat-ish weak scaling


class TestMemoryFigure:
    def test_fig34_theory_tracks_measurement(self):
        res = ev.fig34_memory_study(sizes=(1024,))
        for row in res.rows:
            _, _, mdata, mmeta, tdata, tmeta, _ = row
            assert mdata == tdata
            assert abs(mmeta - tmeta) / tmeta < 0.25

    def test_fig34_plist_overhead_larger(self):
        res = ev.fig34_memory_study(sizes=(2048,))
        ratios = {r[0]: r[6] for r in res.rows}
        assert ratios["plist"] > ratios["parray"] * 5


class TestPListFigures:
    def test_fig39_push_anywhere_fastest(self):
        res = ev.fig39_plist_methods(n_per_loc=150)
        t = {r[0]: r[1] for r in res.rows}
        assert t["push_anywhere"] < t["push_back"]
        assert t["push_anywhere"] < t["push_front"]

    def test_fig40_parray_cheaper_than_plist(self):
        res = ev.fig40_parray_vs_plist(nlocs_list=(2,), n_per_loc=1000)
        t = {(r[1], r[2]): r[3] for r in res.rows}
        assert t[("parray", "p_for_each")] < t[("plist", "p_for_each")]

    def test_fig41_packed_beats_spread(self):
        res = ev.fig41_placement(nlocs_list=(8,), n_per_loc=1000)
        t = {r[1]: r[2] for r in res.rows}
        assert t["packed"] < t["spread"]

    def test_fig42_crossover(self):
        res = ev.fig42_plist_vs_pvector(num_ops=300)
        t = {(r[0], r[1]): r[2] for r in res.rows}
        # insert/delete-heavy: pList wins decisively
        assert (t[("insert_delete_heavy", "plist")]
                < t[("insert_delete_heavy", "pvector")])
        # read-heavy: pVector is at least competitive (paper: wins)
        assert (t[("read_heavy", "pvector")]
                <= t[("read_heavy", "plist")] * 1.1)

    def test_fig43_returns_series(self):
        res = ev.fig43_euler_tour_weak(nlocs_list=(2,), verts_per_loc=16)
        assert res.rows and res.rows[0][2] > 0

    def test_fig44_phases(self):
        res = ev.fig44_euler_applications(P=2, sizes=(15,))
        phases = {r[1] for r in res.rows}
        assert phases == {"tour+rank", "rooting", "levels", "preorder",
                          "subtree_sizes"}


class TestPGraphFigures:
    def test_fig49_static_cheaper_than_dynamic(self):
        res = ev.fig49_50_pgraph_methods(machines=("cray4",), P=4, n=96)
        t = {(r[1], r[2]): r[4] for r in res.rows}
        assert t[("static", "add_edge")] < t[("dynamic", "add_edge")]

    def test_fig51_partition_ordering(self):
        res = ev.fig51_find_sources(P=4, n=96)
        t = {r[0]: r[1] for r in res.rows}
        assert t["static"] < t["dynamic_fwd"] < t["dynamic_nofwd"]
        fw = {r[0]: r[2] for r in res.rows}
        assert fw["dynamic_fwd"] > 0 and fw["dynamic_nofwd"] == 0

    def test_fig52_runs(self):
        res = ev.fig52_partition_comparison(P=2, n=64)
        t = {r[0]: r[1] for r in res.rows}
        assert t["static_blocked"] < t["dynamic_nofwd"]

    def test_fig53_55_all_algorithms(self):
        res = ev.fig53_55_graph_algorithms(machines=("cray4",), P=2, n=64)
        algos = {r[1] for r in res.rows}
        assert algos == {"bfs", "connected_components", "coloring",
                         "degree_stats"}

    def test_fig56_mesh_shapes_differ(self):
        res = ev.fig56_pagerank_meshes(P=4, cells=256, iterations=2)
        assert len(res.rows) == 2
        assert res.rows[0][1] == pytest.approx(res.rows[1][1], rel=0.2)


class TestAssocAndComposition:
    def test_fig59_weak_scaling(self):
        res = ev.fig59_mapreduce_wordcount(nlocs_list=(1, 2), tokens_per_loc=800)
        assert res.rows[1][1] == 2 * res.rows[0][1]
        assert res.rows[0][3] > 0

    def test_fig60_runs(self):
        res = ev.fig60_assoc_algorithms(nlocs_list=(2,), n_per_loc=400)
        assert len(res.rows) == 3

    def test_fig62_ordering(self):
        res = ev.fig62_row_min(P=2, rows=24, cols=12)
        t = {r[0]: r[1] for r in res.rows}
        assert t["pmatrix"] < t["parray<parray>"] <= t["plist<parray>"]


class TestAblations:
    def test_aggregation_monotone(self):
        res = ev.ablation_aggregation(n_per_loc=150, levels=(1, 64))
        assert res.rows[0][1] > res.rows[1][1]
        assert res.rows[0][2] > res.rows[1][2]

    def test_view_alignment(self):
        res = ev.ablation_view_alignment(n_per_loc=400)
        t = {r[0]: r[1] for r in res.rows}
        assert t["native_aligned"] <= t["balanced_over_blocked"]
        assert t["balanced_over_blocked"] < t["balanced_over_cyclic"]

    def test_consistency_mode_price(self):
        res = ev.ablation_consistency_mode(n_per_loc=100)
        t = {r[0]: r[1] for r in res.rows}
        assert t["default"] < t["sequential"]

    def test_lazy_size_cheaper(self):
        res = ev.ablation_lazy_size(reps=40)
        t = {r[0]: r[1] for r in res.rows}
        assert t["lazy_replicated"] < t["collective_sync"]

    def test_table_formatting(self):
        res = ev.ablation_lazy_size(reps=5)
        text = res.format_table()
        assert "lazy_replicated" in text and "==" in text


class TestParagraphFigures:
    def test_paragraph_dataflow_wins(self):
        res = ev.paragraph_study(P=4, n_per_loc=800)
        ti = res.columns.index("time_us")
        fi = res.columns.index("fences")
        t = {r[0]: (r[ti], r[fi]) for r in res.rows}
        assert t["fenced"][1] >= 2 * t["dataflow"][1]  # fences
        assert t["dataflow"][0] < t["fenced"][0]       # simulated time

    def test_sort_transport_slabs_win(self):
        res = ev.sort_transport_study(P=4, n_per_loc=1024)
        t = {r[0]: r[3] for r in res.rows}
        assert t["per_element"] >= 10 * t["bulk"]
