"""pView tests (Ch. III.A, Table II)."""

import pytest

from repro.containers.parray import PArray
from repro.containers.plist import PList
from repro.containers.pmatrix import PMatrix
from repro.core import BlockCyclicPartition, Matrix2DPartition
from repro.views import (
    Array1DROView,
    Array1DView,
    BalancedView,
    ListView,
    OverlapView,
    StridedView,
    TransformView,
    native_view,
)
from repro.views.list_views import StaticListView
from repro.views.matrix_views import MatrixLinearView, MatrixRowsView
from tests.conftest import run


def _iota_array(ctx, n=16, **kw):
    pa = PArray(ctx, n, dtype=int, **kw)
    for i in range(ctx.id, n, ctx.nlocs):
        pa.set_element(i, i)
    ctx.rmi_fence()
    return pa


class TestArray1DView:
    def test_read_write(self):
        def prog(ctx):
            pa = _iota_array(ctx)
            v = Array1DView(pa)
            got = v[3]
            ctx.rmi_fence()          # close the read phase
            if ctx.id == 0:
                v[3] = 99
            ctx.rmi_fence()
            return got, v.read(3), v.size()
        assert run(prog, nlocs=2) == [(3, 99, 16)] * 2

    def test_out_of_domain(self):
        def prog(ctx):
            v = Array1DView(_iota_array(ctx, 4))
            try:
                v.read(4)
                return False
            except IndexError:
                return True
        assert all(run(prog, nlocs=2))

    def test_native_chunks_cover_container(self):
        def prog(ctx):
            pa = _iota_array(ctx)
            v = native_view(pa)
            local = sum(ch.size() for ch in v.local_chunks())
            return ctx.allreduce_rmi(local)
        assert run(prog, nlocs=4)[0] == 16

    def test_mapping_function(self):
        def prog(ctx):
            pa = _iota_array(ctx, 16)
            # view of the even elements via F(i) = 2i
            v = Array1DView(pa, domain=None, mapping=lambda i: (2 * i) % 16)
            return v.read(3)
        assert run(prog, nlocs=2) == [6, 6]

    def test_read_only_view(self):
        def prog(ctx):
            v = Array1DROView(_iota_array(ctx, 4))
            try:
                v.write(0, 1)
                return False
            except TypeError:
                return True
        assert all(run(prog, nlocs=2))


class TestBalancedView:
    def test_chunks_are_contiguous_slices(self):
        def prog(ctx):
            pa = _iota_array(ctx, 10)
            bv = BalancedView(Array1DView(pa))
            chunks = bv.local_chunks()
            assert len(chunks) == 1
            return list(chunks[0].gids())
        out = run(prog, nlocs=4)
        assert out[0] == [0, 1, 2]  # 10 over 4: sizes 3,3,2,2
        assert out[3] == [8, 9]

    def test_reads_follow_distribution(self):
        def prog(ctx):
            pa = _iota_array(ctx, 8, partition=BlockCyclicPartition(ctx.nlocs, 1))
            bv = BalancedView(Array1DView(pa))
            return [bv.read(i) for i in bv.balanced_slices()]
        out = run(prog, nlocs=2)
        assert out[0] == [0, 1, 2, 3] and out[1] == [4, 5, 6, 7]


class TestStridedView:
    def test_stride_mapping(self):
        def prog(ctx):
            v = StridedView(Array1DView(_iota_array(ctx)), stride=3, start=1)
            return v.size(), [v.read(i) for i in range(v.size())]
        size, vals = run(prog, nlocs=2)[0]
        assert size == 5 and vals == [1, 4, 7, 10, 13]

    def test_stride_write(self):
        def prog(ctx):
            pa = _iota_array(ctx, 8)
            v = StridedView(Array1DView(pa), stride=2)
            if ctx.id == 0:
                v.write(1, -1)
            ctx.rmi_fence()
            return pa.get_element(2)
        assert run(prog, nlocs=2) == [-1, -1]

    def test_invalid_stride(self):
        def prog(ctx):
            with pytest.raises(ValueError):
                StridedView(Array1DView(_iota_array(ctx, 4)), stride=0)
            ctx.rmi_fence()
        run(prog, nlocs=1)


class TestTransformView:
    def test_read_override(self):
        def prog(ctx):
            v = TransformView(Array1DView(_iota_array(ctx, 4)), lambda x: -x)
            return [v.read(i) for i in range(4)]
        assert run(prog, nlocs=2)[0] == [0, -1, -2, -3]

    def test_write_rejected(self):
        def prog(ctx):
            v = TransformView(Array1DView(_iota_array(ctx, 4)), abs)
            try:
                v.write(0, 1)
                return False
            except TypeError:
                return True
        assert all(run(prog, nlocs=2))

    def test_chunked_reduction(self):
        from repro.algorithms.generic import p_accumulate

        def prog(ctx):
            v = TransformView(Array1DView(_iota_array(ctx, 8)),
                              lambda x: x * 2)
            return p_accumulate(v, 0)
        assert run(prog, nlocs=2) == [56, 56]


class TestOverlapView:
    def test_fig2_example(self):
        """Fig. 2: A[0,10], c=2, l=2, r=1 -> elements A[2i, 2i+4]."""
        def prog(ctx):
            pa = _iota_array(ctx, 11)
            ov = OverlapView(Array1DView(pa), c=2, l=2, r=1)
            return ov.size(), ov.read(0), ov.read(3)
        size, w0, w3 = run(prog, nlocs=2)[0]
        assert size == 4
        assert w0 == [0, 1, 2, 3, 4]
        assert w3 == [6, 7, 8, 9, 10]

    def test_windows_cover(self):
        def prog(ctx):
            pa = _iota_array(ctx, 10)
            ov = OverlapView(Array1DView(pa), c=1, l=1, r=0)
            return [ov.read(i) for i in range(ov.size())]
        wins = run(prog, nlocs=2)[0]
        assert wins[0] == [0, 1] and wins[-1] == [8, 9]

    def test_bad_params(self):
        def prog(ctx):
            with pytest.raises(ValueError):
                OverlapView(Array1DView(_iota_array(ctx, 4)), c=0)
            ctx.rmi_fence()
        run(prog, nlocs=1)

    def test_read_only(self):
        def prog(ctx):
            ov = OverlapView(Array1DView(_iota_array(ctx, 6)), c=2)
            try:
                ov.write(0, [1, 2])
                return False
            except TypeError:
                return True
        assert all(run(prog, nlocs=2))


class TestListViews:
    def test_static_list_view_chunks(self):
        def prog(ctx):
            pl = PList(ctx, 8, value=2)
            v = StaticListView(pl)
            local = sum(ch.size() for ch in v.local_chunks())
            return ctx.allreduce_rmi(local)
        assert run(prog, nlocs=4)[0] == 8

    def test_list_view_structural_ops(self):
        def prog(ctx):
            pl = PList(ctx, 0)
            v = ListView(pl)
            gid = v.insert_any(ctx.id)
            got = pl.get_element(gid)
            ctx.rmi_fence()
            new_gid = v.insert(gid, -1)
            assert pl.get_element(new_gid) == -1
            v.erase(new_gid)
            ctx.rmi_fence()
            pl.update_size()
            return got, pl.size()
        assert run(prog, nlocs=3) == [(0, 3), (1, 3), (2, 3)]


class TestMatrixViews:
    def test_linear_view_row_major(self):
        def prog(ctx):
            pm = PMatrix(ctx, 3, 4, dtype=int)
            for r in range(ctx.id, 3, ctx.nlocs):
                for c in range(4):
                    pm.set_element((r, c), r * 4 + c)
            ctx.rmi_fence()
            v = MatrixLinearView(pm)
            return v.size(), [v.read(i) for i in range(12)]
        size, vals = run(prog, nlocs=2)[0]
        assert size == 12 and vals == list(range(12))

    def test_rows_view_local_when_row_partitioned(self):
        def prog(ctx):
            pm = PMatrix(ctx, 4, 3, value=1.0,
                         partition=Matrix2DPartition(ctx.nlocs, 1))
            rv = MatrixRowsView(pm)
            chunks = rv.local_chunks()
            return [type(ch).__name__ for ch in chunks]
        out = run(prog, nlocs=2)
        assert all(names == ["_LocalRowsChunk"] for names in out)

    def test_rows_view_read(self):
        def prog(ctx):
            pm = PMatrix(ctx, 2, 3, dtype=int,
                         partition=Matrix2DPartition(ctx.nlocs, 1))
            for r in range(ctx.id, 2, ctx.nlocs):
                for c in range(3):
                    pm.set_element((r, c), 10 * r + c)
            ctx.rmi_fence()
            return MatrixRowsView(pm).read(1)
        assert run(prog, nlocs=2)[0] == [10, 11, 12]
