"""1D views over pVector: element-interface chunks, correct after inserts."""

from repro.algorithms import p_accumulate, p_for_each, p_generate, p_partial_sum
from repro.containers.parray import PArray
from repro.containers.pvector import PVector
from repro.views import Array1DView
from tests.conftest import run


class TestPVectorViews:
    def test_generate_and_accumulate(self):
        def prog(ctx):
            pv = PVector(ctx, 12)
            v = Array1DView(pv)
            p_generate(v, lambda i: i * 2)
            total = p_accumulate(v, 0)
            return total, pv.to_list()
        total, data = run(prog, nlocs=3)[0]
        assert total == sum(i * 2 for i in range(12))
        assert data == [i * 2 for i in range(12)]

    def test_for_each(self):
        def prog(ctx):
            pv = PVector(ctx, 8, value=1)
            v = Array1DView(pv)
            p_for_each(v, lambda x: x + 4)
            return pv.to_list()
        assert run(prog, nlocs=2)[0] == [5] * 8

    def test_view_tracks_inserts(self):
        def prog(ctx):
            pv = PVector(ctx, 6, value=1)
            if ctx.id == 0:
                pv.insert_element(3, 10)
            ctx.rmi_fence()
            v = Array1DView(pv)
            return v.size(), p_accumulate(v, 0)
        assert run(prog, nlocs=3)[0] == (7, 16)

    def test_partial_sum_vector_to_array(self):
        def prog(ctx):
            pv = PVector(ctx, 9, value=1)
            out = PArray(ctx, 9, dtype=int)
            p_partial_sum(Array1DView(pv), Array1DView(out))
            return out.to_list()
        assert run(prog, nlocs=3)[0] == list(range(1, 10))
