"""Derived-view tests: overlap / segmented / zip / slice composition
(Ch. IV, the ``vw_overlap.cc`` family), equivalence with flat views, and
survival across a migration epoch."""

from repro.algorithms.generic import p_generate
from repro.containers.parray import PArray
from repro.views.array_views import Array1DView
from repro.views.derived_views import (
    OverlapView,
    SegmentedView,
    SliceView,
    ZipView,
    overlap_view,
    segmented_view,
    slab_read,
    slab_write,
    zip_view,
)
from tests.conftest import run


def _filled(ctx, n, fn=lambda i: 10 * i):
    pa = PArray(ctx, n, dtype=int)
    v = Array1DView(pa)
    p_generate(v, fn, vector=None)
    ctx.rmi_fence()
    return pa, v


class TestOverlapViewDerived:
    def test_windows_match_flat_reads(self):
        def prog(ctx):
            _pa, v = _filled(ctx, 12)
            ov = overlap_view(v, core=2, left=1, right=1)
            flat = [v.read(i) for i in range(12)]
            exp = [flat[2 * w:2 * w + 4] for w in range(ov.size())]
            got = [ov.read(w) for w in range(ov.size())]
            ctx.rmi_fence()
            return got == exp, ov.size()
        out = run(prog, nlocs=3)
        # n=12, window=4, core=2 -> (12-4)//2 + 1 = 5 windows
        assert out == [(True, 5)] * 3

    def test_read_range_one_slab(self):
        def prog(ctx):
            _pa, v = _filled(ctx, 16)
            ov = overlap_view(v, core=1, left=1, right=1)
            whole = ov.read_range(0, ov.size())
            exp = [[v.read(j) for j in range(w, w + 3)]
                   for w in range(ov.size())]
            ctx.rmi_fence()
            return whole == exp
        assert all(run(prog, nlocs=4))

    def test_materialize_base_span(self):
        def prog(ctx):
            _pa, v = _filled(ctx, 10)
            ov = overlap_view(v, core=1, left=2, right=1)
            lo, buf = ov.materialize(3, 6)  # windows 3..5, base [3, 9)
            ctx.rmi_fence()
            return lo, list(buf) == [v.read(j) for j in range(3, 9)]
        assert run(prog, nlocs=2) == [(3, True)] * 2

    def test_read_only(self):
        def prog(ctx):
            _pa, v = _filled(ctx, 8)
            ov = overlap_view(v, core=1, left=1, right=1)
            try:
                ov.write(0, [0, 0, 0])
            except TypeError:
                return True
            return False
        assert all(run(prog, nlocs=2))


class TestSegmentedViewDerived:
    def test_segments_are_views(self):
        def prog(ctx):
            _pa, v = _filled(ctx, 12)
            sv = segmented_view(v, [3, 4, 5])
            seg = sv.read(1)
            ok = (isinstance(seg, SliceView) and seg.size() == 4
                  and [seg.read(j) for j in range(4)]
                  == [v.read(3 + j) for j in range(4)])
            ctx.rmi_fence()
            return ok, sv.size()
        assert run(prog, nlocs=3) == [(True, 3)] * 3

    def test_pairs_partitioner(self):
        def prog(ctx):
            _pa, v = _filled(ctx, 10)
            sv = segmented_view(v, [(0, 2), (2, 7), (7, 10)])
            sizes = [sv.read(i).size() for i in range(sv.size())]
            ctx.rmi_fence()
            return sizes
        assert run(prog, nlocs=2) == [[2, 5, 3]] * 2

    def test_segment_writes_hit_base(self):
        def prog(ctx):
            pa, v = _filled(ctx, 9)
            sv = segmented_view(v, [3, 3, 3])
            if ctx.id == 0:
                seg = sv.read(1)
                slab_write(seg, 0, [-1, -2, -3])
            sv.post_execute()
            return pa.to_list()[3:6]
        assert run(prog, nlocs=3) == [[-1, -2, -3]] * 3

    def test_bad_lengths_rejected(self):
        def prog(ctx):
            _pa, v = _filled(ctx, 8)
            try:
                segmented_view(v, [3, 3])  # sums to 6, base is 8
            except ValueError:
                return True
            return False
        assert all(run(prog, nlocs=2))


class TestZipViewDerived:
    def test_tuple_reads(self):
        def prog(ctx):
            _pa, a = _filled(ctx, 8, lambda i: i)
            _pb, b = _filled(ctx, 8, lambda i: 100 + i)
            zv = zip_view(a, b)
            got = [zv.read(i) for i in range(8)]
            ctx.rmi_fence()
            return got == [(i, 100 + i) for i in range(8)]
        assert all(run(prog, nlocs=4))

    def test_slab_round_trip(self):
        def prog(ctx):
            pa, a = _filled(ctx, 8, lambda i: i)
            pb, b = _filled(ctx, 8, lambda i: -i)
            zv = zip_view(a, b)
            pairs = slab_read(zv, 2, 6)
            if ctx.id == 0:
                slab_write(zv, 0, [(7, 7)] * 2)
            zv.post_execute()
            return pairs, pa.to_list()[:2], pb.to_list()[:2]
        out = run(prog, nlocs=2)
        assert out[0][0] == [(i, -i) for i in range(2, 6)]
        assert out[0][1] == [7, 7] and out[0][2] == [7, 7]

    def test_size_mismatch_rejected(self):
        def prog(ctx):
            _pa, a = _filled(ctx, 8)
            _pb, b = _filled(ctx, 9)
            try:
                zip_view(a, b)
            except ValueError:
                return True
            return False
        assert all(run(prog, nlocs=2))


class TestComposition:
    def test_zip_of_overlap_and_slice(self):
        """Derived views stack: zip(overlap windows, segment slice)."""
        def prog(ctx):
            _pa, v = _filled(ctx, 10)
            ov = overlap_view(v, core=1, left=0, right=2)  # 8 windows
            seg = segmented_view(v, [(1, 9), (9, 10)]).read(0)  # 8 cells
            zv = zip_view(ov, seg)
            got = slab_read(zv, 0, zv.size())
            exp = [([v.read(j) for j in range(w, w + 3)], v.read(1 + w))
                   for w in range(8)]
            ctx.rmi_fence()
            return [tuple(g) for g in got] == [
                (list(w), s) for w, s in exp]
        assert all(run(prog, nlocs=2))


class TestMigrationEpoch:
    def test_overlap_survives_rebalance(self):
        """A derived view built before a rebalance reads correct values
        after it — the chunk cache is keyed to the distribution epoch."""
        def prog(ctx):
            _pa, v = _filled(ctx, 16)
            ov = overlap_view(v, core=1, left=1, right=1)
            before = ov.read_range(0, ov.size())
            e0 = ov._distribution_epoch()
            v.container.rebalance()
            e1 = ov._distribution_epoch()
            after = ov.read_range(0, ov.size())
            ctx.rmi_fence()
            return before == after, e0 != e1
        out = run(prog, nlocs=4)
        assert all(o[0] for o in out)
        assert all(o[1] for o in out)

    def test_zip_survives_migrate(self):
        """Migrating one bContainer of one base invalidates the composed
        epoch key; reads through the zip view stay correct."""
        def prog(ctx):
            pa, a = _filled(ctx, 16, lambda i: i)
            _pb, b = _filled(ctx, 16, lambda i: 2 * i)
            zv = zip_view(a, b)
            before = slab_read(zv, 0, 16)
            e0 = zv._distribution_epoch()
            pa.migrate({0: ctx.nlocs - 1})
            e1 = zv._distribution_epoch()
            after = slab_read(zv, 0, 16)
            ctx.rmi_fence()
            return before == after, e0 != e1
        out = run(prog, nlocs=4)
        assert all(o[0] for o in out)
        assert all(o[1] for o in out)

    def test_segmented_write_after_migrate(self):
        def prog(ctx):
            pa, v = _filled(ctx, 12)
            sv = segmented_view(v, [4, 4, 4])
            pa.migrate({1: 0})
            if ctx.id == 0:
                slab_write(sv.read(2), 0, [5, 6, 7, 8])
            sv.post_execute()
            return pa.to_list()[8:]
        assert run(prog, nlocs=3) == [[5, 6, 7, 8]] * 3


class TestDerivedChunks:
    def test_overlap_local_chunks_cover_domain(self):
        def prog(ctx):
            _pa, v = _filled(ctx, 12)
            ov = overlap_view(v, core=2, left=1, right=1)
            gids = sorted(g for ch in ov.local_chunks() for g in ch.gids())
            gathered = ctx.allgather_rmi(gids)
            ctx.rmi_fence()
            return sorted(g for gs in gathered for g in gs), ov.size()
        out = run(prog, nlocs=3)
        for gids, nseg in out:
            assert gids == list(range(nseg))

    def test_classes_exported(self):
        assert OverlapView and SegmentedView and ZipView
