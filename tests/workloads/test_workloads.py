"""Workload generator tests."""

import pytest

from repro.workloads.corpus import generate_tokens, local_documents, vocabulary
from repro.workloads.meshes import local_mesh_edges, mesh_edges, mesh_vertex
from repro.workloads.opmix import STANDARD_MIXES, OpMix, generate_ops
from repro.workloads.ssca2 import SSCA2Spec, generate_edges, local_edges
from repro.workloads.trees import (
    binary_tree_edges,
    caterpillar_tree_edges,
    random_tree_edges,
    tree_parents,
)


class TestSSCA2:
    def test_deterministic(self):
        spec = SSCA2Spec(num_vertices=64, seed=5)
        assert generate_edges(spec) == generate_edges(spec)

    def test_vertices_in_range(self):
        spec = SSCA2Spec(num_vertices=40)
        for u, v in generate_edges(spec):
            assert 0 <= u < 40 and 0 <= v < 40

    def test_clustered_structure(self):
        spec = SSCA2Spec(num_vertices=64, max_clique_size=4)
        edges = generate_edges(spec)
        # cliques generate both directions of every local pair
        es = set(edges)
        intra = sum(1 for (u, v) in es if (v, u) in es)
        assert intra > len(es) // 2

    def test_local_slices_partition_stream(self):
        spec = SSCA2Spec(num_vertices=48)
        full = generate_edges(spec)
        parts = [local_edges(spec, lid, 4) for lid in range(4)]
        assert sum(len(p) for p in parts) == len(full)
        assert sorted(e for p in parts for e in p) == sorted(full)


class TestMeshes:
    def test_edge_count(self):
        # 2*(r*(c-1) + c*(r-1)) directed edges when bidirectional
        edges = mesh_edges(3, 4)
        assert len(edges) == 2 * (3 * 3 + 4 * 2)

    def test_vertex_numbering(self):
        assert mesh_vertex(2, 3, 10) == 23

    def test_local_edges_cover_all_sources(self):
        rows, cols, P = 4, 5, 3
        per_loc = [local_mesh_edges(rows, cols, lid, P) for lid in range(P)]
        allv = {u for p in per_loc for (u, _) in p}
        assert allv == set(range(rows * cols))
        # bidirectional local lists cover every undirected adjacency twice
        total = sum(len(p) for p in per_loc)
        assert total == len(mesh_edges(rows, cols))


class TestCorpus:
    def test_zipf_skew(self):
        toks = generate_tokens(5000, vocab_size=100, seed=1)
        from collections import Counter

        counts = Counter(toks)
        top = counts.most_common(1)[0][1]
        assert top > len(toks) / 100 * 3  # far above uniform share

    def test_local_documents_differ_by_location(self):
        d0 = local_documents(0, 4, 100)
        d1 = local_documents(1, 4, 100)
        assert d0 != d1
        assert sum(len(d.split()) for d in d0) == 100

    def test_vocabulary(self):
        assert vocabulary(3) == ["w0", "w1", "w2"]


class TestOpMix:
    def test_ratios_validated(self):
        with pytest.raises(ValueError):
            OpMix(0.5, 0.5, 0.5, 0.5)

    def test_standard_mixes_valid(self):
        for mix in STANDARD_MIXES.values():
            assert abs(mix.read + mix.write + mix.insert + mix.delete - 1) < 1e-9

    def test_generate_ops_deterministic_and_distributed(self):
        ops = generate_ops(1000, STANDARD_MIXES["read_heavy"], seed=3)
        assert ops == generate_ops(1000, STANDARD_MIXES["read_heavy"], seed=3)
        kinds = [k for k, _ in ops]
        assert kinds.count("read") > 800
        assert all(0 <= r < 1 for _, r in ops)


class TestTrees:
    @pytest.mark.parametrize("maker", [
        binary_tree_edges,
        caterpillar_tree_edges,
        lambda n: random_tree_edges(n, seed=1),
    ])
    def test_is_spanning_tree(self, maker):
        n = 17
        edges = maker(n)
        assert len(edges) == n - 1
        parents = tree_parents(edges, n, 0)
        assert all(p != -1 for p in parents)  # connected

    def test_binary_tree_structure(self):
        edges = binary_tree_edges(7)
        assert (0, 1) in edges and (0, 2) in edges and (2, 6) in edges

    def test_tree_parents_roots_anywhere(self):
        edges = binary_tree_edges(7)
        p = tree_parents(edges, 7, 6)
        assert p[6] == 6 and p[2] == 6 and p[0] == 2
