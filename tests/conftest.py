"""Shared helpers for the test suite."""

import multiprocessing

import pytest

from repro.runtime import spmd_run, spmd_run_detailed


@pytest.fixture(autouse=True)
def _reap_backend_workers():
    """Suite-wide flakiness guard: no test may leak a live worker process.

    The multiprocessing backend names every location worker
    ``repro-loc-<i>``; if a test (or a bug it found) aborts a run without
    joining them, orphans would soak up the CPU and corrupt later tests'
    wall-clock measurements.  Reap them deterministically instead of
    retrying flaky tests — retries are banned in this suite."""
    yield
    for proc in multiprocessing.active_children():
        if proc.name.startswith("repro-loc-"):
            proc.terminate()
            proc.join(timeout=5.0)


def run(prog, nlocs=4, machine="smp", args=(), placement="packed"):
    """Run an SPMD program, returning per-location results."""
    return spmd_run(prog, nlocs=nlocs, machine=machine, args=args,
                    placement=placement)


def run_detailed(prog, nlocs=4, machine="smp", args=(), placement="packed"):
    return spmd_run_detailed(prog, nlocs=nlocs, machine=machine, args=args,
                             placement=placement)


@pytest.fixture
def spmd():
    return run


@pytest.fixture
def spmd_detailed():
    return run_detailed
