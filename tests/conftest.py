"""Shared helpers for the test suite."""

import pytest

from repro.runtime import spmd_run, spmd_run_detailed


def run(prog, nlocs=4, machine="smp", args=(), placement="packed"):
    """Run an SPMD program, returning per-location results."""
    return spmd_run(prog, nlocs=nlocs, machine=machine, args=args,
                    placement=placement)


def run_detailed(prog, nlocs=4, machine="smp", args=(), placement="packed"):
    return spmd_run_detailed(prog, nlocs=nlocs, machine=machine, args=args,
                             placement=placement)


@pytest.fixture
def spmd():
    return run


@pytest.fixture
def spmd_detailed():
    return run_detailed
